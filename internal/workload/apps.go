package workload

import (
	"fmt"

	"aheft/internal/dag"
	"aheft/internal/rng"
)

// AppParams configures a real-application DAG scenario (paper Table 5).
type AppParams struct {
	// Parallelism is the fan-out factor: the number of parallel chains in
	// BLAST, or the number of k-points per LAPW section in WIEN2K. The
	// paper's υ (total jobs) is 2·Parallelism+2 for BLAST and
	// 2·Parallelism+8 for WIEN2K.
	Parallelism int
	// CCR, Beta, AvgComp as in RandomParams.
	CCR     float64
	Beta    float64
	AvgComp float64
}

// DefaultAppAvgComp is the ω_DAG used for application DAGs when
// AppParams.AvgComp is zero. The paper's BLAST/WIEN2K makespans (≈4900 and
// ≈3450 under Table 5's pools) imply a larger per-job scale than the
// random sweep; 200 lands the reproduced averages in the paper's range
// and, importantly, makes workflows live through several Δ-spaced arrival
// events, as the paper's improvement rates require.
const DefaultAppAvgComp = 200

func (p AppParams) avgComp() float64 {
	if p.AvgComp > 0 {
		return p.AvgComp
	}
	return DefaultAppAvgComp
}

func (p AppParams) validate() error {
	if p.Parallelism < 1 {
		return fmt.Errorf("workload: Parallelism must be >= 1, got %d", p.Parallelism)
	}
	if p.CCR < 0 || p.Beta < 0 || p.Beta > 2 {
		return fmt.Errorf("workload: invalid AppParams %+v", p)
	}
	return nil
}

// BlastJobs returns the total job count of a BLAST DAG with the given
// parallelism (the paper's six-step example is parallelism 2 → 6 jobs).
func BlastJobs(parallelism int) int { return 2*parallelism + 2 }

// BlastParallelism inverts BlastJobs, rounding down, so sweeps can be
// phrased in the paper's υ terms.
func BlastParallelism(jobs int) int {
	p := (jobs - 2) / 2
	if p < 1 {
		p = 1
	}
	return p
}

// BLAST generates the paper's Fig. 6 workflow shape from the GNARE
// genome-analysis system: a FileBreaker splits the input into k blocks;
// each block flows through a blastall search and a parser; a final merger
// collects the parsed outputs. Four operation kinds, 2k+2 jobs, maximal
// width k — the high-parallelism, well-balanced shape the paper found
// benefits most from adaptive rescheduling.
func BLAST(p AppParams, r *rng.Source) (*dag.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	k := p.Parallelism
	g := dag.New(fmt.Sprintf("blast-x%d", k))
	// The paper's application DAGs are full-balanced: the k parallel
	// chains are symmetric, so one data size is drawn per edge *class*
	// (split→blast, blast→parse, parse→merge) and shared by every chain.
	// Sampling per edge instead would let one random outlier transfer
	// dominate the makespan, which is not how an input split into equal
	// blocks behaves.
	commScale := 2 * p.CCR * p.avgComp()
	w := func() float64 { return r.Uniform(0, commScale) }
	wSplit, wBlast, wParse := w(), w(), w()

	split := g.AddJob("FileBreaker", "FileBreaker")
	merge := g.AddJob("Merger", "Merger")
	for i := 1; i <= k; i++ {
		blast := g.AddJob(fmt.Sprintf("Blast_%d", i), "blastall")
		parse := g.AddJob(fmt.Sprintf("Parse_%d", i), "parser")
		g.MustEdge(split, blast, wSplit)
		g.MustEdge(blast, parse, wBlast)
		g.MustEdge(parse, merge, wParse)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Wien2kJobs returns the total job count of a WIEN2K DAG with the given
// parallelism.
func Wien2kJobs(parallelism int) int { return 2*parallelism + 8 }

// Wien2kParallelism inverts Wien2kJobs, rounding down.
func Wien2kParallelism(jobs int) int {
	p := (jobs - 8) / 2
	if p < 1 {
		p = 1
	}
	return p
}

// WIEN2K generates the paper's Fig. 7 full-balanced workflow from the
// ASKALON-hosted quantum-chemistry application: StageIn → LAPW0 → k
// parallel LAPW1 tasks → the single LAPW2_FERMI synchronisation job → k
// parallel LAPW2 tasks → a serial tail (SumPara → LCore → Mixer →
// Converged → StageOut). The lone LAPW2_FERMI between the two parallel
// sections halves the effective parallelism — the structural reason the
// paper finds WIEN2K benefits far less from new resources than BLAST.
func WIEN2K(p AppParams, r *rng.Source) (*dag.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	k := p.Parallelism
	g := dag.New(fmt.Sprintf("wien2k-x%d", k))
	// Full-balanced (Fig. 7): one data size per edge class, shared by the
	// k parallel chains of each LAPW section.
	commScale := 2 * p.CCR * p.avgComp()
	w := func() float64 { return r.Uniform(0, commScale) }
	wFan1, wJoin1, wFan2, wJoin2 := w(), w(), w(), w()

	stageIn := g.AddJob("StageIn", "StageIn")
	lapw0 := g.AddJob("LAPW0", "LAPW0")
	g.MustEdge(stageIn, lapw0, w())
	fermi := g.AddJob("LAPW2_FERMI", "LAPW2_FERMI")
	sum := g.AddJob("SumPara", "SumPara")
	for i := 1; i <= k; i++ {
		l1 := g.AddJob(fmt.Sprintf("LAPW1_K%d", i), "LAPW1")
		g.MustEdge(lapw0, l1, wFan1)
		g.MustEdge(l1, fermi, wJoin1)
		l2 := g.AddJob(fmt.Sprintf("LAPW2_K%d", i), "LAPW2")
		g.MustEdge(fermi, l2, wFan2)
		g.MustEdge(l2, sum, wJoin2)
	}
	lcore := g.AddJob("LCore", "LCore")
	mixer := g.AddJob("Mixer", "Mixer")
	conv := g.AddJob("Converged", "Converged")
	out := g.AddJob("StageOut", "StageOut")
	g.MustEdge(sum, lcore, w())
	g.MustEdge(lcore, mixer, w())
	g.MustEdge(mixer, conv, w())
	g.MustEdge(conv, out, w())
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Montage generates a Montage-like mosaicking workflow (the third
// well-balanced scientific workflow the paper cites; included as an
// extension): k parallel mProject jobs, pairwise mDiffFit jobs, a serial
// mConcatFit → mBgModel pair, k parallel mBackground jobs and a final
// mAdd.
func Montage(p AppParams, r *rng.Source) (*dag.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	k := p.Parallelism
	g := dag.New(fmt.Sprintf("montage-x%d", k))
	// One data size per edge class, as for the other full-balanced apps.
	commScale := 2 * p.CCR * p.avgComp()
	w := func() float64 { return r.Uniform(0, commScale) }
	wProj, wDiff, wFit, wModel, wBg, wImg, wAdd := w(), w(), w(), w(), w(), w(), w()

	stage := g.AddJob("mStage", "mStage")
	proj := make([]dag.JobID, k)
	for i := range proj {
		proj[i] = g.AddJob(fmt.Sprintf("mProject_%d", i+1), "mProject")
		g.MustEdge(stage, proj[i], wProj)
	}
	concat := g.AddJob("mConcatFit", "mConcatFit")
	if k == 1 {
		d := g.AddJob("mDiffFit_1", "mDiffFit")
		g.MustEdge(proj[0], d, wDiff)
		g.MustEdge(d, concat, wFit)
	} else {
		for i := 0; i+1 < k; i++ {
			d := g.AddJob(fmt.Sprintf("mDiffFit_%d", i+1), "mDiffFit")
			g.MustEdge(proj[i], d, wDiff)
			g.MustEdge(proj[i+1], d, wDiff)
			g.MustEdge(d, concat, wFit)
		}
	}
	bg := g.AddJob("mBgModel", "mBgModel")
	g.MustEdge(concat, bg, wModel)
	add := g.AddJob("mAdd", "mAdd")
	for i := range proj {
		b := g.AddJob(fmt.Sprintf("mBackground_%d", i+1), "mBackground")
		g.MustEdge(bg, b, wBg)
		g.MustEdge(proj[i], b, wImg)
		g.MustEdge(b, add, wAdd)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BlastOpScales weighs BLAST's operations: the blastall genome search
// dominates (it is the reason the workflow is gridified), the parser is
// mid-weight, and the file staging steps are bookkeeping. The heavyweight
// operations are exactly the parallelisable ones, which is why BLAST
// profits so strongly from new resources.
var BlastOpScales = map[string]float64{
	"FileBreaker": 0.2,
	"blastall":    2.0,
	"parser":      0.5,
	"Merger":      0.2,
}

// Wien2kOpScales weighs WIEN2K's operations: the parallel LAPW1/LAPW2
// k-point tasks are moderate, while a meaningful fraction of the
// workflow's time sits in the serial spine (LAPW0, LAPW2_FERMI, the
// SumPara→StageOut tail) that no amount of extra resources can
// accelerate — the structural reason the paper finds WIEN2K benefits far
// less than BLAST.
var Wien2kOpScales = map[string]float64{
	"StageIn":     0.1,
	"LAPW0":       1.0,
	"LAPW1":       1.0,
	"LAPW2_FERMI": 1.0,
	"LAPW2":       0.5,
	"SumPara":     0.3,
	"LCore":       1.0,
	"Mixer":       0.3,
	"Converged":   0.1,
	"StageOut":    0.1,
}

// MontageOpScales weighs the Montage-like operations (projection and
// background correction dominate).
var MontageOpScales = map[string]float64{
	"mStage":      0.1,
	"mProject":    1.5,
	"mDiffFit":    0.5,
	"mConcatFit":  0.3,
	"mBgModel":    0.5,
	"mBackground": 1.0,
	"mAdd":        0.3,
}

// BlastScenario builds a full BLAST simulation case.
func BlastScenario(p AppParams, gp GridParams, r *rng.Source) (*Scenario, error) {
	g, err := BLAST(p, r)
	if err != nil {
		return nil, err
	}
	return BuildScenarioScaled(g, gp, p.Beta, p.avgComp(), p.CCR, PerOp, BlastOpScales, r)
}

// Wien2kScenario builds a full WIEN2K simulation case.
func Wien2kScenario(p AppParams, gp GridParams, r *rng.Source) (*Scenario, error) {
	g, err := WIEN2K(p, r)
	if err != nil {
		return nil, err
	}
	return BuildScenarioScaled(g, gp, p.Beta, p.avgComp(), p.CCR, PerOp, Wien2kOpScales, r)
}

// MontageScenario builds a full Montage-like simulation case.
func MontageScenario(p AppParams, gp GridParams, r *rng.Source) (*Scenario, error) {
	g, err := Montage(p, r)
	if err != nil {
		return nil, err
	}
	return BuildScenarioScaled(g, gp, p.Beta, p.avgComp(), p.CCR, PerOp, MontageOpScales, r)
}
