package workload

import (
	"fmt"
	"math"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/rng"
)

// RandomParams are the paper's Table 2 DAG-shape parameters, following the
// heterogeneous computation modelling approach of the HEFT paper.
type RandomParams struct {
	// Jobs is υ, the number of jobs.
	Jobs int
	// CCR is the communication-to-computation ratio: mean edge weight over
	// mean computation cost. Data-intensive workflows have high CCR.
	CCR float64
	// OutDegree bounds a node's out-edges as a fraction of υ.
	OutDegree float64
	// Beta is the resource heterogeneity factor: w(i,j) is drawn from
	// [w̄_i(1−β/2), w̄_i(1+β/2)]. Zero means homogeneous resources.
	Beta float64
	// Alpha is the Topcuoglu shape parameter: the graph has about
	// sqrt(υ)/α levels and mean level width α·sqrt(υ). α > 1 yields short,
	// wide (highly parallel) DAGs; α < 1 yields long, narrow ones. Zero
	// means 1.0. The HEFT paper sweeps α over {0.5, 1.0, 2.0}, which the
	// experiment harness reproduces.
	Alpha float64
	// AvgComp is ω_DAG, the average computation cost scale. Zero means the
	// DefaultAvgComp of 100.
	AvgComp float64
}

// Alphas is the Topcuoglu shape-parameter value set.
var Alphas = []float64{0.5, 1.0, 2.0}

// DefaultAvgComp is the ω_DAG used when RandomParams.AvgComp is zero. The
// paper does not report its scale; 100 puts the random-sweep makespans in
// the paper's thousands range.
const DefaultAvgComp = 100

func (p RandomParams) avgComp() float64 {
	if p.AvgComp > 0 {
		return p.AvgComp
	}
	return DefaultAvgComp
}

func (p RandomParams) validate() error {
	if p.Jobs < 2 {
		return fmt.Errorf("workload: RandomParams.Jobs must be >= 2, got %d", p.Jobs)
	}
	if p.CCR < 0 || p.OutDegree <= 0 || p.Beta < 0 || p.Beta > 2 {
		return fmt.Errorf("workload: invalid RandomParams %+v", p)
	}
	return nil
}

// RandomDAG generates a parametric random workflow: a single-entry,
// single-exit levelled DAG in the style of the HEFT paper's generator.
// The number of levels is about sqrt(υ) (perturbed ±20%), jobs are spread
// over the levels, every non-entry job has at least one parent in an
// earlier level, and extra edges are added up to the out-degree bound with
// targets biased toward the next level. Edge weights are uniform on
// [0, 2·CCR·ω_DAG], so the realised mean communication cost is CCR·ω_DAG.
func RandomDAG(p RandomParams, r *rng.Source) (*dag.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	v := p.Jobs
	g := dag.New(fmt.Sprintf("random-v%d", v))

	// Level structure: entry level and exit level hold one job each; the
	// middle jobs spread over about sqrt(v)/α levels (mean width
	// α·sqrt(v), perturbed ±20%).
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	mid := v - 2
	levels := 1
	if mid > 0 {
		levels = int(math.Round(math.Sqrt(float64(v)) / alpha * r.Uniform(0.8, 1.2)))
		if levels < 1 {
			levels = 1
		}
		if levels > mid {
			levels = mid
		}
	}
	// levelOf[i] for middle jobs: 1..levels; entry is level 0, exit is
	// levels+1.
	counts := make([]int, levels)
	for i := 0; i < levels; i++ {
		counts[i] = 1 // at least one job per middle level
	}
	for i := levels; i < mid; i++ {
		counts[r.IntN(levels)]++
	}

	ids := make([][]dag.JobID, levels+2)
	entry := g.AddJob("entry", "op-entry")
	ids[0] = []dag.JobID{entry}
	n := 0
	for l := 0; l < levels; l++ {
		for k := 0; k < counts[l]; k++ {
			n++
			ids[l+1] = append(ids[l+1], g.AddJob(fmt.Sprintf("j%d", n), fmt.Sprintf("op%d", n)))
		}
	}
	exit := g.AddJob("exit", "op-exit")
	ids[levels+1] = []dag.JobID{exit}

	commScale := 2 * p.CCR * p.avgComp()
	weight := func() float64 { return r.Uniform(0, commScale) }

	// Connectivity: every non-entry job gets one parent from the previous
	// level.
	for l := 1; l < len(ids); l++ {
		prev := ids[l-1]
		for _, j := range ids[l] {
			parent := prev[r.IntN(len(prev))]
			g.MustEdge(parent, j, weight())
		}
	}
	// Extra edges up to the out-degree bound, biased to the next level.
	maxOut := int(math.Max(1, math.Round(p.OutDegree*float64(v))))
	for l := 0; l < len(ids)-1; l++ {
		for _, u := range ids[l] {
			want := r.IntN(maxOut) + 1
			have := len(g.Succs(u))
			for t := have; t < want; t++ {
				tl := l + 1
				if len(ids)-l > 2 && r.Float64() > 0.8 {
					tl = l + 2 + r.IntN(len(ids)-l-2)
				}
				cands := ids[tl]
				tgt := cands[r.IntN(len(cands))]
				if _, dup := g.EdgeData(u, tgt); dup {
					continue
				}
				g.MustEdge(u, tgt, weight())
			}
		}
	}
	// Every non-exit job needs a successor so the exit dominates the DAG.
	for _, j := range g.Jobs() {
		if j.ID != exit && len(g.Succs(j.ID)) == 0 {
			g.MustEdge(j.ID, exit, weight())
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// CostModel selects how computation costs are attached to jobs.
type CostModel int

const (
	// PerJob samples an independent mean cost for every job — the random
	// DAG model, where each job is a distinct operation.
	PerJob CostModel = iota
	// PerOp samples one mean cost per distinct Op and one realisation per
	// (Op, resource) pair: all jobs running the same program on the same
	// resource cost the same. This reflects the paper's observation that
	// scientific workflows contain hundreds of jobs but only a handful of
	// unique operations (BLAST, WIEN2K, Montage).
	PerOp
)

// SampleCosts builds the ground-truth computation table for nRes resources
// using the β heterogeneity model: mean job cost w̄ uniform on
// [0, 2·avgComp] (floored at 1% of avgComp so costs stay positive), and
// per-resource cost uniform on [w̄(1−β/2), w̄(1+β/2)].
func SampleCosts(g *dag.Graph, nRes int, beta, avgComp float64, model CostModel, r *rng.Source) (*cost.Table, error) {
	return SampleCostsScaled(g, nRes, beta, avgComp, model, nil, r)
}

// SampleCostsScaled is SampleCosts with per-operation scale factors: an
// operation with scale s draws its mean cost from [0, 2·s·avgComp].
// Real applications mix heavyweight and bookkeeping operations — a
// blastall genome search dwarfs the FileBreaker that staged its input —
// and the relative weight of the parallelisable operations is what
// determines how much a workflow can gain from extra resources.
// Operations absent from scales default to 1.
func SampleCostsScaled(g *dag.Graph, nRes int, beta, avgComp float64, model CostModel, scales map[string]float64, r *rng.Source) (*cost.Table, error) {
	if nRes <= 0 {
		return nil, fmt.Errorf("workload: SampleCosts with %d resources", nRes)
	}
	if avgComp <= 0 {
		avgComp = DefaultAvgComp
	}
	floor := 0.01 * avgComp
	meanForOp := func(op string) float64 {
		scale := 1.0
		if s, ok := scales[op]; ok && s > 0 {
			scale = s
		}
		w := r.Uniform(0, 2*avgComp*scale)
		if w < floor {
			w = floor
		}
		return w
	}
	meanFor := func() float64 { return meanForOp("") }
	perturb := func(mean float64) float64 {
		w := r.Uniform(mean*(1-beta/2), mean*(1+beta/2))
		if w < floor {
			w = floor
		}
		return w
	}

	comp := make([][]float64, g.Len())
	switch model {
	case PerJob:
		for i := range comp {
			mean := meanFor()
			row := make([]float64, nRes)
			for j := range row {
				row[j] = perturb(mean)
			}
			comp[i] = row
		}
	case PerOp:
		opRow := make(map[string][]float64)
		for _, job := range g.Jobs() {
			row, ok := opRow[job.Op]
			if !ok {
				mean := meanForOp(job.Op)
				row = make([]float64, nRes)
				for j := range row {
					row[j] = perturb(mean)
				}
				opRow[job.Op] = row
			}
			comp[job.ID] = row
		}
	default:
		return nil, fmt.Errorf("workload: unknown cost model %d", model)
	}
	return cost.NewTable(comp)
}

// GridParams are the paper's Table 2 resource-change parameters.
type GridParams struct {
	// InitialResources is R, the time-0 pool size.
	InitialResources int
	// ChangeInterval is Δ; zero disables pool changes.
	ChangeInterval float64
	// ChangePct is δ, the per-event growth as a fraction of R.
	ChangePct float64
	// MaxEvents caps the number of arrival events. Zero derives a horizon
	// automatically from a makespan estimate of the workflow.
	MaxEvents int
}

// HorizonEventCap bounds the automatic MaxEvents derivation so the cost
// table for late arrivals stays small.
const HorizonEventCap = 16

// autoEvents estimates how many arrival events can matter: events later
// than a generous (2×) makespan estimate never influence any strategy.
func autoEvents(g *dag.Graph, p GridParams, avgComp, ccr float64) int {
	if p.ChangeInterval <= 0 || p.ChangePct <= 0 {
		return 0
	}
	levels := g.Levels()
	depth := float64(len(levels))
	cp := depth * (avgComp + ccr*avgComp) // rough critical path with transfers
	work := float64(g.Len()) * avgComp / float64(p.InitialResources)
	est := math.Max(cp, work)
	n := int(math.Ceil(2 * est / p.ChangeInterval))
	if n < 1 {
		n = 1
	}
	if n > HorizonEventCap {
		n = HorizonEventCap
	}
	return n
}

// BuildScenario assembles a complete simulation case: a DAG, its dynamic
// pool per gp, and a cost table covering every resource that ever joins.
func BuildScenario(g *dag.Graph, p GridParams, beta, avgComp, ccr float64, model CostModel, r *rng.Source) (*Scenario, error) {
	return BuildScenarioScaled(g, p, beta, avgComp, ccr, model, nil, r)
}

// BuildScenarioScaled is BuildScenario with per-operation cost scales (see
// SampleCostsScaled).
func BuildScenarioScaled(g *dag.Graph, p GridParams, beta, avgComp, ccr float64, model CostModel, scales map[string]float64, r *rng.Source) (*Scenario, error) {
	events := p.MaxEvents
	if events == 0 {
		events = autoEvents(g, p, avgComp, ccr)
	}
	dm := grid.DynamicModel{
		Initial:   p.InitialResources,
		Interval:  p.ChangeInterval,
		ChangePct: p.ChangePct,
		MaxEvents: events,
	}
	pool, err := dm.Build()
	if err != nil {
		return nil, err
	}
	table, err := SampleCostsScaled(g, pool.Size(), beta, avgComp, model, scales, r)
	if err != nil {
		return nil, err
	}
	return &Scenario{Graph: g, Table: table, Pool: pool}, nil
}

// RandomScenario generates one full random-DAG case from the paper's
// parameter space.
func RandomScenario(p RandomParams, gp GridParams, r *rng.Source) (*Scenario, error) {
	g, err := RandomDAG(p, r)
	if err != nil {
		return nil, err
	}
	return BuildScenario(g, gp, p.Beta, p.avgComp(), p.CCR, PerJob, r)
}
