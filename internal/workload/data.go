package workload

import (
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/data"
	"aheft/internal/grid"
)

// DataParams tunes the data-heavy scenario. The zero value selects the
// defaults noted per field.
type DataParams struct {
	// Searches is the fan-out width N (default 6).
	Searches int
	// DBSize is the shared database file's size (default 200).
	DBSize float64
	// HitSize is each search's result file size (default 8).
	HitSize float64
	// LinkBW is the bandwidth of each site's shared link (default 4).
	LinkBW float64
}

func (p DataParams) withDefaults() DataParams {
	if p.Searches <= 0 {
		p.Searches = 6
	}
	if p.DBSize <= 0 {
		p.DBSize = 200
	}
	if p.HitSize <= 0 {
		p.HitSize = 8
	}
	if p.LinkBW <= 0 {
		p.LinkBW = 4
	}
	return p
}

// DataScenario builds the data-heavy BLAST-like case the data-aware path
// is evaluated on: a prep job fans out to N search jobs that all read one
// large pre-staged database file, and a merge job collects each search's
// hit file. The grid has two sites behind named links — site A (r0, r1)
// hosts the database replicas but computes slowly, site B (r2, r3)
// computes fast but every database byte must cross both site links to
// reach it. A data-oblivious scheduler sees only the small raw edge
// weights, packs the searches onto site B, and pays N serialized
// database transfers at run time; a data-aware scheduler sees the derived
// size ÷ bandwidth costs and the link contention, keeps the searches next
// to the data, and wins on makespan. The raw edge weights are kept small
// deliberately — they are the bait.
func DataScenario(p DataParams) *Scenario {
	p = p.withDefaults()
	g := dag.New("data-blast")
	prep := g.AddJob("prep", "prep")
	searches := make([]dag.JobID, p.Searches)
	for i := range searches {
		searches[i] = g.AddJob("search"+itoa(i+1), "search")
	}
	merge := g.AddJob("merge", "merge")
	files := []data.File{{ID: "db", Size: p.DBSize, Hosts: []grid.ID{0, 1}}}
	for i, s := range searches {
		hit := "hits" + itoa(i+1)
		g.MustFileEdge(prep, s, 5, "db")
		g.MustFileEdge(s, merge, 2, hit)
		files = append(files, data.File{ID: hit, Size: p.HitSize})
	}
	graph := g.MustValidate()

	// Site A hosts the data, site B is ~2.5x faster on the searches.
	rows := make([][]float64, 0, graph.Len())
	rows = append(rows, []float64{4, 4, 3, 3}) // prep
	for range searches {                       //
		rows = append(rows, []float64{30, 30, 12, 12}) // search
	}
	rows = append(rows, []float64{6, 6, 5, 5}) // merge
	table := cost.MustTable(rows)

	links := map[string]float64{"siteA": p.LinkBW, "siteB": p.LinkBW}
	pool := grid.MustPoolLinks([]grid.Arrival{
		{Time: 0, Resource: grid.Resource{ID: 0, Name: "a1", Link: "siteA"}},
		{Time: 0, Resource: grid.Resource{ID: 1, Name: "a2", Link: "siteA"}},
		{Time: 0, Resource: grid.Resource{ID: 2, Name: "b1", Link: "siteB"}},
		{Time: 0, Resource: grid.Resource{ID: 3, Name: "b2", Link: "siteB"}},
	}, links)

	return &Scenario{
		Graph: graph,
		Table: table,
		Pool:  pool,
		Files: &data.Set{Files: files},
	}
}
