package workload

import (
	"fmt"
	"math"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/rng"
)

func TestSampleDAGShape(t *testing.T) {
	g := SampleDAG()
	if g.Len() != 10 {
		t.Fatalf("jobs = %d, want 10", g.Len())
	}
	if g.NumEdges() != 15 {
		t.Fatalf("edges = %d, want 15", g.NumEdges())
	}
	if es := g.Entries(); len(es) != 1 || g.Job(es[0]).Name != "n1" {
		t.Fatalf("entry = %v", es)
	}
	if xs := g.Exits(); len(xs) != 1 || g.Job(xs[0]).Name != "n10" {
		t.Fatalf("exit = %v", xs)
	}
	// Spot-check published edge weights.
	for _, e := range []struct {
		from, to string
		want     float64
	}{
		{"n1", "n2", 18}, {"n1", "n4", 9}, {"n4", "n8", 27}, {"n9", "n10", 13},
	} {
		w, ok := g.EdgeData(g.JobByName(e.from), g.JobByName(e.to))
		if !ok || w != e.want {
			t.Errorf("edge (%s,%s) = %g,%v want %g", e.from, e.to, w, ok, e.want)
		}
	}
}

func TestSampleTableValues(t *testing.T) {
	tb := SampleTable()
	if tb.Jobs() != 10 || tb.Resources() != 4 {
		t.Fatalf("table shape %dx%d", tb.Jobs(), tb.Resources())
	}
	if tb.Comp(0, 2) != 9 { // n1 on r3
		t.Fatalf("w(n1,r3) = %g, want 9", tb.Comp(0, 2))
	}
	if tb.Comp(9, 1) != 7 { // n10 on r2
		t.Fatalf("w(n10,r2) = %g, want 7", tb.Comp(9, 1))
	}
}

func TestSampleScenarioPool(t *testing.T) {
	sc := SampleScenario()
	if len(sc.Pool.Initial()) != 3 {
		t.Fatal("want 3 initial resources")
	}
	if ct := sc.Pool.ChangeTimes(); len(ct) != 1 || ct[0] != 15 {
		t.Fatalf("change times = %v, want [15]", ct)
	}
}

func TestRandomDAGShape(t *testing.T) {
	root := rng.New(1)
	for i := 0; i < 30; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		v := 5 + r.IntN(96)
		p := RandomParams{Jobs: v, CCR: 1, OutDegree: 0.2, Beta: 0.5}
		g, err := RandomDAG(p, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != v {
			t.Fatalf("jobs = %d, want %d", g.Len(), v)
		}
		if len(g.Entries()) != 1 || len(g.Exits()) != 1 {
			t.Fatalf("entries/exits = %d/%d, want 1/1", len(g.Entries()), len(g.Exits()))
		}
		if _, err := g.TopoOrder(); err != nil {
			t.Fatalf("not a DAG: %v", err)
		}
		maxOut := int(math.Max(1, math.Round(p.OutDegree*float64(v))))
		for _, j := range g.Jobs() {
			// The connectivity pass can add one extra edge (to the exit)
			// beyond the sampled out-degree.
			if d := len(g.Succs(j.ID)); d > maxOut+1 {
				t.Fatalf("out degree %d exceeds bound %d", d, maxOut)
			}
		}
	}
}

func TestRandomDAGDeterministic(t *testing.T) {
	p := RandomParams{Jobs: 40, CCR: 2, OutDegree: 0.3, Beta: 0.5}
	a, err := RandomDAG(p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomDAG(p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a.MarshalJSON()
	db, _ := b.MarshalJSON()
	if string(da) != string(db) {
		t.Fatal("same seed produced different DAGs")
	}
}

func TestRandomDAGRealisedCCR(t *testing.T) {
	r := rng.New(99)
	p := RandomParams{Jobs: 400, CCR: 5, OutDegree: 0.1, Beta: 0}
	g, err := RandomDAG(p, r)
	if err != nil {
		t.Fatal(err)
	}
	table, err := SampleCosts(g, 10, 0, 100, PerJob, r)
	if err != nil {
		t.Fatal(err)
	}
	got := cost.CCR(g, cost.Exact(table), grid.StaticPool(10).Initial())
	if got < 2.5 || got > 8 {
		t.Fatalf("realised CCR = %g, want around 5", got)
	}
}

func TestRandomDAGValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomDAG(RandomParams{Jobs: 1, CCR: 1, OutDegree: 0.2}, r); err == nil {
		t.Fatal("Jobs=1 accepted")
	}
	if _, err := RandomDAG(RandomParams{Jobs: 10, CCR: -1, OutDegree: 0.2}, r); err == nil {
		t.Fatal("negative CCR accepted")
	}
	if _, err := RandomDAG(RandomParams{Jobs: 10, CCR: 1, OutDegree: 0}, r); err == nil {
		t.Fatal("zero out-degree accepted")
	}
}

func TestBlastShape(t *testing.T) {
	r := rng.New(5)
	for _, k := range []int{1, 2, 10, 100} {
		g, err := BLAST(AppParams{Parallelism: k, CCR: 1, Beta: 0.5}, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != BlastJobs(k) {
			t.Fatalf("k=%d: jobs = %d, want %d", k, g.Len(), BlastJobs(k))
		}
		if g.Width() != k {
			t.Fatalf("k=%d: width = %d, want %d", k, g.Width(), k)
		}
		if lv := g.Levels(); len(lv) != 4 {
			t.Fatalf("k=%d: levels = %d, want 4 (split, blast, parse, merge)", k, len(lv))
		}
		ops := map[string]bool{}
		for _, j := range g.Jobs() {
			ops[j.Op] = true
		}
		if len(ops) != 4 {
			t.Fatalf("k=%d: %d distinct operations, want 4", k, len(ops))
		}
	}
}

func TestBlastSixStepExample(t *testing.T) {
	// The paper's Fig. 6: two-way parallelism → six jobs.
	g, err := BLAST(AppParams{Parallelism: 2, CCR: 1, Beta: 0.5}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 {
		t.Fatalf("six-step example has %d jobs", g.Len())
	}
}

func TestWien2kShape(t *testing.T) {
	r := rng.New(5)
	for _, k := range []int{1, 2, 10, 100} {
		g, err := WIEN2K(AppParams{Parallelism: k, CCR: 1, Beta: 0.5}, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != Wien2kJobs(k) {
			t.Fatalf("k=%d: jobs = %d, want %d", k, g.Len(), Wien2kJobs(k))
		}
		if g.Width() != k {
			t.Fatalf("k=%d: width = %d, want %d", k, g.Width(), k)
		}
		// LAPW2_FERMI is the lone job on its level: the serialisation
		// bottleneck the paper blames for WIEN2K's modest improvements.
		fermi := g.JobByName("LAPW2_FERMI")
		if len(g.Preds(fermi)) != k || len(g.Succs(fermi)) != k {
			t.Fatalf("k=%d: LAPW2_FERMI degree %d/%d, want %d/%d",
				k, len(g.Preds(fermi)), len(g.Succs(fermi)), k, k)
		}
	}
}

func TestMontageShape(t *testing.T) {
	r := rng.New(5)
	for _, k := range []int{1, 2, 8} {
		g, err := Montage(AppParams{Parallelism: k, CCR: 1, Beta: 0.5}, r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.TopoOrder(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(g.Exits()) != 1 {
			t.Fatalf("k=%d: exits = %v", k, g.Exits())
		}
	}
}

func TestParallelismInverses(t *testing.T) {
	for _, jobs := range []int{200, 400, 600, 800, 1000} {
		if got := BlastJobs(BlastParallelism(jobs)); got != jobs {
			t.Errorf("BLAST: %d jobs round-trips to %d", jobs, got)
		}
		if got := Wien2kJobs(Wien2kParallelism(jobs)); got != jobs {
			t.Errorf("WIEN2K: %d jobs round-trips to %d", jobs, got)
		}
	}
	if BlastParallelism(2) != 1 || Wien2kParallelism(5) != 1 {
		t.Fatal("parallelism floor broken")
	}
}

func TestSampleCostsBeta(t *testing.T) {
	r := rng.New(11)
	g, err := RandomDAG(RandomParams{Jobs: 50, CCR: 1, OutDegree: 0.2, Beta: 0}, r)
	if err != nil {
		t.Fatal(err)
	}
	// β = 0: homogeneous — every row constant.
	tb, err := SampleCosts(g, 6, 0, 100, PerJob, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range g.Jobs() {
		w0 := tb.Comp(j.ID, 0)
		for res := 1; res < 6; res++ {
			if tb.Comp(j.ID, grid.ID(res)) != w0 {
				t.Fatalf("β=0 but job %d costs differ across resources", j.ID)
			}
		}
	}
	// β = 1: heterogeneous — expect variation for most jobs.
	tb, err = SampleCosts(g, 6, 1, 100, PerJob, r)
	if err != nil {
		t.Fatal(err)
	}
	varies := 0
	for _, j := range g.Jobs() {
		if tb.Comp(j.ID, 0) != tb.Comp(j.ID, 1) {
			varies++
		}
	}
	if varies < 40 {
		t.Fatalf("β=1 but only %d/50 jobs vary across resources", varies)
	}
}

func TestSampleCostsPerOp(t *testing.T) {
	r := rng.New(13)
	g, err := BLAST(AppParams{Parallelism: 20, CCR: 1, Beta: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := SampleCosts(g, 5, 1, 100, PerOp, r)
	if err != nil {
		t.Fatal(err)
	}
	// All blastall jobs cost the same on each resource.
	var blastJobs []dag.JobID
	for _, j := range g.Jobs() {
		if j.Op == "blastall" {
			blastJobs = append(blastJobs, j.ID)
		}
	}
	if len(blastJobs) != 20 {
		t.Fatalf("found %d blastall jobs, want 20", len(blastJobs))
	}
	first := blastJobs[0]
	for _, id := range blastJobs[1:] {
		for res := grid.ID(0); res < 5; res++ {
			if tb.Comp(first, res) != tb.Comp(id, res) {
				t.Fatalf("PerOp: blastall jobs %d and %d differ on r%d", first, id, res)
			}
		}
	}
	// Different operations should (almost surely) differ somewhere.
	split := g.JobByName("FileBreaker")
	if tb.Comp(split, 0) == tb.Comp(first, 0) && tb.Comp(split, 1) == tb.Comp(first, 1) {
		t.Log("warning: FileBreaker and blastall sampled identical costs (unlikely)")
	}
}

func TestSampleCostsErrors(t *testing.T) {
	r := rng.New(1)
	g := SampleDAG()
	if _, err := SampleCosts(g, 0, 0.5, 100, PerJob, r); err == nil {
		t.Fatal("zero resources accepted")
	}
	if _, err := SampleCosts(g, 2, 0.5, 100, CostModel(9), r); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestBuildScenarioAutoHorizon(t *testing.T) {
	r := rng.New(17)
	g, err := RandomDAG(RandomParams{Jobs: 40, CCR: 1, OutDegree: 0.3, Beta: 0.5}, r)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario(g, GridParams{
		InitialResources: 5, ChangeInterval: 100, ChangePct: 0.2,
	}, 0.5, 100, 1, PerJob, r)
	if err != nil {
		t.Fatal(err)
	}
	events := len(sc.Pool.ChangeTimes())
	if events < 1 || events > HorizonEventCap {
		t.Fatalf("auto events = %d, want within [1,%d]", events, HorizonEventCap)
	}
	if sc.Table.Resources() != sc.Pool.Size() {
		t.Fatalf("cost table covers %d resources, pool has %d", sc.Table.Resources(), sc.Pool.Size())
	}
	if sc.Table.Jobs() != g.Len() {
		t.Fatal("cost table rows != jobs")
	}
}

func TestAppScenarios(t *testing.T) {
	r := rng.New(23)
	gp := GridParams{InitialResources: 4, ChangeInterval: 200, ChangePct: 0.25, MaxEvents: 2}
	for name, build := range map[string]func() (*Scenario, error){
		"blast":  func() (*Scenario, error) { return BlastScenario(AppParams{Parallelism: 10, CCR: 1, Beta: 0.5}, gp, r) },
		"wien2k": func() (*Scenario, error) { return Wien2kScenario(AppParams{Parallelism: 10, CCR: 1, Beta: 0.5}, gp, r) },
		"montage": func() (*Scenario, error) {
			return MontageScenario(AppParams{Parallelism: 10, CCR: 1, Beta: 0.5}, gp, r)
		},
	} {
		sc, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Table.Jobs() != sc.Graph.Len() || sc.Table.Resources() != sc.Pool.Size() {
			t.Fatalf("%s: inconsistent scenario", name)
		}
	}
}

func TestAppParamsValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := BLAST(AppParams{Parallelism: 0, CCR: 1}, r); err == nil {
		t.Fatal("zero parallelism accepted")
	}
	if _, err := WIEN2K(AppParams{Parallelism: 2, CCR: -1}, r); err == nil {
		t.Fatal("negative CCR accepted")
	}
}
