// Package testleak provides the goroutine-leak check shared by the
// cancellation tests: capture runtime.NumGoroutine() as a baseline
// before starting concurrent work, and after tearing it down call Check
// to poll the count back to the baseline (goroutine exit is asynchronous
// with the cancellation that caused it).
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// Check fails t if the goroutine count does not return to
// baseline+slack within five seconds, dumping all stacks for diagnosis.
// slack allows for goroutines the test itself still legitimately holds
// (e.g. a subscriber parked on a closed channel range).
func Check(t testing.TB, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d (+%d slack)\n%s",
				n, baseline, slack, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
