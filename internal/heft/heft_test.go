package heft

import (
	"fmt"
	"math"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// classicRanks are the published upward ranks of the Topcuoglu sample DAG
// over its three resources (HEFT paper, Table 3 / Fig. 2).
var classicRanks = map[string]float64{
	"n1": 108.000, "n2": 77.000, "n3": 80.000, "n4": 80.000, "n5": 69.000,
	"n6": 63.333, "n7": 42.667, "n8": 35.667, "n9": 44.333, "n10": 14.667,
}

func sample3() (*dag.Graph, cost.Estimator, []grid.Resource) {
	g := workload.SampleDAG()
	est := cost.Exact(workload.SampleTable())
	rs := grid.StaticPool(3).Initial()
	return g, est, rs
}

func TestRankUMatchesPublishedValues(t *testing.T) {
	g, est, rs := sample3()
	ranks, err := RankU(g, est, rs)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range classicRanks {
		got := ranks[g.JobByName(name)]
		if math.Abs(got-want) > 0.01 {
			t.Errorf("ranku(%s) = %.3f, want %.3f", name, got, want)
		}
	}
}

func TestOrderIsNonincreasingAndTopological(t *testing.T) {
	g, est, rs := sample3()
	ranks, err := RankU(g, est, rs)
	if err != nil {
		t.Fatal(err)
	}
	order := Order(ranks)
	if len(order) != g.Len() {
		t.Fatalf("order covers %d of %d jobs", len(order), g.Len())
	}
	pos := make(map[dag.JobID]int)
	for i, j := range order {
		if i > 0 && ranks[j] > ranks[order[i-1]] {
			t.Fatalf("ranks increase at position %d", i)
		}
		pos[j] = i
	}
	for _, j := range g.Jobs() {
		for _, e := range g.Succs(j.ID) {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("rank order violates precedence (%d before %d)", e.To, e.From)
			}
		}
	}
}

func TestScheduleClassicMakespan80(t *testing.T) {
	g, est, rs := sample3()
	s, err := Schedule(g, est, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 80 {
		t.Fatalf("makespan = %g, want the published 80\n%s", s.Makespan(), s)
	}
	// The published HEFT schedule, job by job (Topcuoglu Fig. 3a).
	want := map[string]schedule.Assignment{
		"n1":  {Resource: 2, Start: 0, Finish: 9},
		"n3":  {Resource: 2, Start: 9, Finish: 28},
		"n4":  {Resource: 1, Start: 18, Finish: 26},
		"n2":  {Resource: 0, Start: 27, Finish: 40},
		"n5":  {Resource: 2, Start: 28, Finish: 38},
		"n6":  {Resource: 1, Start: 26, Finish: 42},
		"n9":  {Resource: 1, Start: 56, Finish: 68},
		"n7":  {Resource: 2, Start: 38, Finish: 49},
		"n8":  {Resource: 0, Start: 57, Finish: 62},
		"n10": {Resource: 1, Start: 73, Finish: 80},
	}
	for name, w := range want {
		a := s.MustGet(g.JobByName(name))
		if a.Resource != w.Resource || a.Start != w.Start || a.Finish != w.Finish {
			t.Errorf("%s: got r%d [%g,%g), want r%d [%g,%g)",
				name, a.Resource+1, a.Start, a.Finish, w.Resource+1, w.Start, w.Finish)
		}
	}
}

func TestScheduleIsValid(t *testing.T) {
	g, est, rs := sample3()
	s, err := Schedule(g, est, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Validate(g, schedule.ValidateOptions{
		Comp: est, Comm: est, Pool: grid.StaticPool(3),
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScheduleValidOnRandomDAGs is the property test: on arbitrary
// generated workloads, HEFT schedules are complete, overlap-free,
// precedence-respecting and duration-exact.
func TestScheduleValidOnRandomDAGs(t *testing.T) {
	root := rng.New(0xBEEF)
	for i := 0; i < 40; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		p := workload.RandomParams{
			Jobs:      5 + r.IntN(60),
			CCR:       []float64{0.1, 1, 10}[r.IntN(3)],
			OutDegree: []float64{0.1, 0.3, 1}[r.IntN(3)],
			Beta:      []float64{0, 0.5, 1}[r.IntN(3)],
		}
		g, err := workload.RandomDAG(p, r)
		if err != nil {
			t.Fatal(err)
		}
		nRes := 2 + r.IntN(10)
		table, err := workload.SampleCosts(g, nRes, p.Beta, 100, workload.PerJob, r)
		if err != nil {
			t.Fatal(err)
		}
		pool := grid.StaticPool(nRes)
		for _, insertion := range []bool{true, false} {
			s, err := Schedule(g, cost.Exact(table), pool.Initial(), Options{NoInsertion: !insertion})
			if err != nil {
				t.Fatal(err)
			}
			err = s.Validate(g, schedule.ValidateOptions{Comp: table, Comm: table, Pool: pool})
			if err != nil {
				t.Fatalf("case %d insertion=%v: %v\n%s", i, insertion, err, s)
			}
		}
	}
}

// TestInsertionNeverWorse checks the ablation claim: on the same inputs,
// insertion-based HEFT produces a makespan no worse than append-only HEFT
// in the large majority of cases; here we assert the aggregate.
func TestInsertionUsuallyNoWorse(t *testing.T) {
	root := rng.New(0xD00D)
	worse, total := 0, 0
	for i := 0; i < 60; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		g, err := workload.RandomDAG(workload.RandomParams{
			Jobs: 20 + r.IntN(40), CCR: 1, OutDegree: 0.3, Beta: 0.5,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		table, err := workload.SampleCosts(g, 5, 0.5, 100, workload.PerJob, r)
		if err != nil {
			t.Fatal(err)
		}
		rs := grid.StaticPool(5).Initial()
		ins, err := Schedule(g, cost.Exact(table), rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		app, err := Schedule(g, cost.Exact(table), rs, Options{NoInsertion: true})
		if err != nil {
			t.Fatal(err)
		}
		total++
		if ins.Makespan() > app.Makespan()+1e-9 {
			worse++
		}
	}
	if worse > total/5 {
		t.Fatalf("insertion worse than append in %d/%d cases", worse, total)
	}
}

func TestEmptyResourceSet(t *testing.T) {
	g, est, _ := sample3()
	if _, err := Schedule(g, est, nil, Options{}); err == nil {
		t.Fatal("expected error for empty resource set")
	}
	if _, err := RankU(g, est, nil); err == nil {
		t.Fatal("expected error for empty resource set")
	}
}

func TestPlaceJobRequiresScheduledPreds(t *testing.T) {
	g, est, rs := sample3()
	s := schedule.New()
	// n10's predecessors are not scheduled.
	if _, err := PlaceJob(g, est, rs, s, g.JobByName("n10"), 0, true); err == nil {
		t.Fatal("expected error placing a job before its predecessors")
	}
}

func TestPlaceJobHonoursFloor(t *testing.T) {
	g, est, rs := sample3()
	s := schedule.New()
	a, err := PlaceJob(g, est, rs, s, g.JobByName("n1"), 42, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Start < 42 {
		t.Fatalf("start %g below floor 42", a.Start)
	}
}

func TestSingleResourceSerialises(t *testing.T) {
	g, est, _ := sample3()
	rs := grid.StaticPool(1).Initial()
	s, err := Schedule(g, est, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// On one resource the makespan is the sum of costs on r1.
	sum := 0.0
	for _, j := range g.Jobs() {
		sum += est.Comp(j.ID, 0)
	}
	if math.Abs(s.Makespan()-sum) > 1e-9 {
		t.Fatalf("single-resource makespan %g, want serial sum %g", s.Makespan(), sum)
	}
}
