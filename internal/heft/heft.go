// Package heft implements the classic static HEFT heuristic (Heterogeneous
// Earliest Finish Time; Topcuoglu, Hariri & Wu, IEEE TPDS 2002), which the
// paper adopts both as its baseline static strategy and as the heuristic H
// inside the adaptive rescheduling loop.
//
// HEFT has two phases:
//
//  1. Rank: compute the upward rank of every job — its average computation
//     cost plus the largest (average-communication + rank) over its
//     successors — and order jobs by nonincreasing rank. The rank of a job
//     is the length of the critical path from the job to the exit, so the
//     ordering processes jobs in order of how strongly they constrain the
//     final makespan.
//
//  2. Place: for each job in rank order, compute its earliest finish time
//     on every available resource (honouring input-data arrival from its
//     already-placed predecessors and, with the insertion policy, idle gaps
//     in each resource's timeline) and bind it to the resource that
//     minimises EFT.
//
// Both phases now live in the shared scheduling kernel
// (internal/kernel); this package is the thin static-HEFT ordering over
// it, kept as the stable entry point for one-shot schedules. PlaceJob
// remains as an independent reference implementation of the Eq. 2–3 EFT
// step — property suites cross-check the kernel's placements against it.
package heft

import (
	"fmt"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
)

// Options configures HEFT.
type Options struct {
	// NoInsertion disables the insertion-based policy: jobs may then only
	// be appended after the last assignment on a resource. Classic HEFT
	// uses insertion; the zero value preserves that default.
	NoInsertion bool
}

// RankU returns the upward rank of every job, indexed by JobID, computed
// with average computation costs over the resource set rs and the edge data
// weights as average communication costs (eqs. 5–6 of the paper). The
// computation runs in the shared kernel; the returned slice is a private
// copy the caller may keep.
func RankU(g *dag.Graph, est cost.Estimator, rs []grid.Resource) ([]float64, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("heft: empty resource set")
	}
	ranks, _, err := kernel.New(g, est).Ranks(rs)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), ranks...), nil
}

// Order returns the jobs sorted by nonincreasing upward rank. Ties break on
// ascending JobID, which keeps the schedule deterministic; because ranks
// strictly decrease along every edge (all costs are positive), any rank
// order is automatically a valid topological order.
func Order(ranks []float64) []dag.JobID { return kernel.Order(ranks) }

// Schedule computes a full static HEFT schedule of g over the resource set
// rs — a thin ordering over the shared kernel. All resources are assumed
// available from time 0: the static planner has no notion of future
// arrivals, which is exactly the limitation AHEFT removes.
func Schedule(g *dag.Graph, est cost.Estimator, rs []grid.Resource, opts Options) (*schedule.Schedule, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("heft: empty resource set")
	}
	return kernel.New(g, est).Static(rs, kernel.Options{NoInsertion: opts.NoInsertion})
}

// PlaceJob computes the EFT-minimising assignment for one job given the
// partial schedule s, in which every predecessor of the job must already be
// assigned. floor is a lower bound on the start time (0 for static
// scheduling; the rescheduling clock for pinned evaluations).
//
// This is the map-based reference implementation of the Eq. 2–3 EFT step:
// production schedules run through the kernel's dense placement loop, and
// the property suites replay kernel placements through this function to
// cross-check the two.
func PlaceJob(g *dag.Graph, est cost.Estimator, rs []grid.Resource, s *schedule.Schedule, job dag.JobID, floor float64, insertion bool) (schedule.Assignment, error) {
	best := schedule.Assignment{Job: job, Resource: grid.NoResource}
	for _, r := range rs {
		ready := floor
		for _, e := range g.Preds(job) {
			pa, ok := s.Get(e.From)
			if !ok {
				return best, fmt.Errorf("heft: predecessor %d of job %d not yet scheduled", e.From, job)
			}
			arrive := pa.Finish + est.Comm(e, pa.Resource, r.ID)
			if arrive > ready {
				ready = arrive
			}
		}
		w := est.Comp(job, r.ID)
		start := s.EarliestStart(r.ID, ready, w, insertion)
		finish := start + w
		if best.Resource == grid.NoResource || finish < best.Finish {
			best = schedule.Assignment{Job: job, Resource: r.ID, Start: start, Finish: finish}
		}
	}
	if best.Resource == grid.NoResource {
		return best, fmt.Errorf("heft: no resource available for job %d", job)
	}
	return best, nil
}
