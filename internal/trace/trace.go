// Package trace records executions as structured event logs. A Collector
// plugs into the executor's event stream (it is an executor.EventHandler)
// and can chain to another handler — typically the Planner's service — so
// tracing composes with the adaptive rescheduling loop. Traces serialise
// to JSON Lines for offline analysis and render compact human-readable
// summaries.
//
// Boundary with internal/obs: this package is the *offline*,
// executor-side collector — its events carry the simulated scheduling
// clock of one analytic run, and most of them (job finishes, arrivals)
// are facts the daemon only ever sees folded into report batches. The
// daemon's own causal span model lives in internal/obs on the wall
// clock. The one fact both sides record first-hand is the rescheduling
// evaluation, and Collector.Spans bridges exactly that shape so offline
// runs and daemon traces can be analysed with the same tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/obs"
)

// Kind classifies trace events.
type Kind string

// Event kinds.
const (
	KindJobFinish  Kind = "job_finish"
	KindArrival    Kind = "resource_arrival"
	KindReschedule Kind = "reschedule"
	KindNote       Kind = "note"
)

// Event is one record of a trace.
type Event struct {
	Time float64 `json:"t"`
	Kind Kind    `json:"kind"`
	// Job fields (job_finish).
	Job      dag.JobID `json:"job,omitempty"`
	JobName  string    `json:"job_name,omitempty"`
	Resource grid.ID   `json:"resource,omitempty"`
	Duration float64   `json:"duration,omitempty"`
	// Arrival fields (resource_arrival).
	Arrived []string `json:"arrived,omitempty"`
	// Reschedule fields (reschedule) and free-form notes.
	Old     float64 `json:"old_makespan,omitempty"`
	New     float64 `json:"new_makespan,omitempty"`
	Adopted bool    `json:"adopted,omitempty"`
	// Trigger distinguishes arrival-triggered from variance-triggered
	// evaluations; ArrivedCount is the number of resources that joined at
	// an arrival-triggered one.
	Trigger      string `json:"trigger,omitempty"`
	ArrivedCount int    `json:"arrived_count,omitempty"`
	Note         string `json:"note,omitempty"`
}

// Collector accumulates events. It is safe for concurrent use and
// implements executor.EventHandler.
type Collector struct {
	mu     sync.Mutex
	events []Event
	g      *dag.Graph
	next   executor.EventHandler
}

var _ executor.EventHandler = (*Collector)(nil)

// NewCollector returns a collector. g (optional) resolves job names; next
// (optional) receives every executor event after it is recorded, so a
// collector can wrap the Planner's handler transparently.
func NewCollector(g *dag.Graph, next executor.EventHandler) *Collector {
	return &Collector{g: g, next: next}
}

// Chain sets (or replaces) the downstream handler events are forwarded to
// — used when the downstream component is constructed after the collector,
// as with planner.ServiceOptions.Trace.
func (c *Collector) Chain(next executor.EventHandler) {
	c.mu.Lock()
	c.next = next
	c.mu.Unlock()
}

// HandleEvent records an executor event and forwards it to the chained
// handler.
func (c *Collector) HandleEvent(ev executor.Event) {
	switch {
	case ev.Finished != dag.NoJob:
		e := Event{
			Time:     ev.Time,
			Kind:     KindJobFinish,
			Job:      ev.Finished,
			Resource: ev.OnResource,
			Duration: ev.ActualDuration,
		}
		if c.g != nil {
			e.JobName = c.g.Job(ev.Finished).Name
		}
		c.append(e)
	case len(ev.Arrived) > 0:
		names := make([]string, len(ev.Arrived))
		for i, r := range ev.Arrived {
			names[i] = r.Name
		}
		c.append(Event{Time: ev.Time, Kind: KindArrival, Arrived: names})
	}
	c.mu.Lock()
	next := c.next
	c.mu.Unlock()
	if next != nil {
		next.HandleEvent(ev)
	}
}

// Reschedule records a planner decision: the makespan comparison, its
// verdict, what triggered the evaluation ("arrival" or "variance"), and
// how many resources arrived (0 for variance triggers).
func (c *Collector) Reschedule(t, old, new float64, adopted bool, trigger string, arrived int) {
	c.append(Event{Time: t, Kind: KindReschedule, Old: old, New: new, Adopted: adopted,
		Trigger: trigger, ArrivedCount: arrived})
}

// Note records a free-form annotation.
func (c *Collector) Note(t float64, format string, args ...any) {
	c.append(Event{Time: t, Kind: KindNote, Note: fmt.Sprintf(format, args...)})
}

func (c *Collector) append(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Events returns a copy of the recorded events in record order (the DES
// delivers them in simulated-time order).
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// WriteJSONL streams the trace as JSON Lines.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range c.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses a trace previously written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Spans bridges the collector's rescheduling evaluations into the
// daemon's span model (obs.Span), the boundary contract between the
// offline and online halves of observability:
//
//   - Only KindReschedule events map. Job finishes and arrivals stay
//     executor-side — the daemon records them only as report-ingest
//     spans over whole batches, so per-job spans here would fabricate
//     a correspondence that does not exist.
//   - The offline clock is the simulated scheduling clock, not the
//     wall clock: Start and End carry the event time scaled to integer
//     nanoseconds on a synthetic timeline starting at zero, and each
//     span is instantaneous (Start == End) because a DES evaluation
//     has no wall-clock duration worth reporting.
//   - Span IDs are 1-based reschedule ordinals local to this
//     collector; Parent and Link stay zero — an offline run has no
//     intake or ingest spans to attach to.
//
// The workflow argument stamps every span, so bridged spans from
// several runs can share one analysis stream.
func (c *Collector) Spans(workflow string) []obs.Span {
	var out []obs.Span
	for _, e := range c.Events() {
		if e.Kind != KindReschedule {
			continue
		}
		ns := int64(e.Time * float64(time.Second))
		out = append(out, obs.Span{
			ID:       uint64(len(out) + 1),
			Stage:    obs.StageEvaluate,
			Workflow: workflow,
			Start:    ns,
			End:      ns,
			Trigger:  e.Trigger,
			Adopted:  e.Adopted,
		})
	}
	return out
}

// Summary renders a one-line-per-event digest.
func (c *Collector) Summary() string {
	var b strings.Builder
	for _, e := range c.Events() {
		switch e.Kind {
		case KindJobFinish:
			name := e.JobName
			if name == "" {
				name = fmt.Sprintf("job%d", e.Job)
			}
			fmt.Fprintf(&b, "%10.2f  finish   %-16s on r%-3d (ran %.2f)\n", e.Time, name, e.Resource+1, e.Duration)
		case KindArrival:
			fmt.Fprintf(&b, "%10.2f  arrival  %s\n", e.Time, strings.Join(e.Arrived, ","))
		case KindReschedule:
			verdict := "kept"
			if e.Adopted {
				verdict = "ADOPTED"
			}
			cause := e.Trigger
			if cause == "" {
				cause = "event"
			}
			fmt.Fprintf(&b, "%10.2f  resched  %.2f -> %.2f  %s (%s)\n", e.Time, e.Old, e.New, verdict, cause)
		case KindNote:
			fmt.Fprintf(&b, "%10.2f  note     %s\n", e.Time, e.Note)
		}
	}
	return b.String()
}

// Stats aggregates a trace: counts per kind and the busy time per
// resource.
type Stats struct {
	Finishes    int
	Arrivals    int
	Reschedules int
	Adopted     int
	BusyTime    map[grid.ID]float64
}

// Aggregate computes trace statistics.
func (c *Collector) Aggregate() Stats {
	st := Stats{BusyTime: make(map[grid.ID]float64)}
	for _, e := range c.Events() {
		switch e.Kind {
		case KindJobFinish:
			st.Finishes++
			st.BusyTime[e.Resource] += e.Duration
		case KindArrival:
			st.Arrivals++
		case KindReschedule:
			st.Reschedules++
			if e.Adopted {
				st.Adopted++
			}
		}
	}
	return st
}
