// Package trace records executions as structured event logs. A Collector
// plugs into the executor's event stream (it is an executor.EventHandler)
// and can chain to another handler — typically the Planner's service — so
// tracing composes with the adaptive rescheduling loop. Traces serialise
// to JSON Lines for offline analysis and render compact human-readable
// summaries.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
)

// Kind classifies trace events.
type Kind string

// Event kinds.
const (
	KindJobFinish  Kind = "job_finish"
	KindArrival    Kind = "resource_arrival"
	KindReschedule Kind = "reschedule"
	KindNote       Kind = "note"
)

// Event is one record of a trace.
type Event struct {
	Time float64 `json:"t"`
	Kind Kind    `json:"kind"`
	// Job fields (job_finish).
	Job      dag.JobID `json:"job,omitempty"`
	JobName  string    `json:"job_name,omitempty"`
	Resource grid.ID   `json:"resource,omitempty"`
	Duration float64   `json:"duration,omitempty"`
	// Arrival fields (resource_arrival).
	Arrived []string `json:"arrived,omitempty"`
	// Reschedule fields (reschedule) and free-form notes.
	Old     float64 `json:"old_makespan,omitempty"`
	New     float64 `json:"new_makespan,omitempty"`
	Adopted bool    `json:"adopted,omitempty"`
	// Trigger distinguishes arrival-triggered from variance-triggered
	// evaluations; ArrivedCount is the number of resources that joined at
	// an arrival-triggered one.
	Trigger      string `json:"trigger,omitempty"`
	ArrivedCount int    `json:"arrived_count,omitempty"`
	Note         string `json:"note,omitempty"`
}

// Collector accumulates events. It is safe for concurrent use and
// implements executor.EventHandler.
type Collector struct {
	mu     sync.Mutex
	events []Event
	g      *dag.Graph
	next   executor.EventHandler
}

var _ executor.EventHandler = (*Collector)(nil)

// NewCollector returns a collector. g (optional) resolves job names; next
// (optional) receives every executor event after it is recorded, so a
// collector can wrap the Planner's handler transparently.
func NewCollector(g *dag.Graph, next executor.EventHandler) *Collector {
	return &Collector{g: g, next: next}
}

// Chain sets (or replaces) the downstream handler events are forwarded to
// — used when the downstream component is constructed after the collector,
// as with planner.ServiceOptions.Trace.
func (c *Collector) Chain(next executor.EventHandler) {
	c.mu.Lock()
	c.next = next
	c.mu.Unlock()
}

// HandleEvent records an executor event and forwards it to the chained
// handler.
func (c *Collector) HandleEvent(ev executor.Event) {
	switch {
	case ev.Finished != dag.NoJob:
		e := Event{
			Time:     ev.Time,
			Kind:     KindJobFinish,
			Job:      ev.Finished,
			Resource: ev.OnResource,
			Duration: ev.ActualDuration,
		}
		if c.g != nil {
			e.JobName = c.g.Job(ev.Finished).Name
		}
		c.append(e)
	case len(ev.Arrived) > 0:
		names := make([]string, len(ev.Arrived))
		for i, r := range ev.Arrived {
			names[i] = r.Name
		}
		c.append(Event{Time: ev.Time, Kind: KindArrival, Arrived: names})
	}
	c.mu.Lock()
	next := c.next
	c.mu.Unlock()
	if next != nil {
		next.HandleEvent(ev)
	}
}

// Reschedule records a planner decision: the makespan comparison, its
// verdict, what triggered the evaluation ("arrival" or "variance"), and
// how many resources arrived (0 for variance triggers).
func (c *Collector) Reschedule(t, old, new float64, adopted bool, trigger string, arrived int) {
	c.append(Event{Time: t, Kind: KindReschedule, Old: old, New: new, Adopted: adopted,
		Trigger: trigger, ArrivedCount: arrived})
}

// Note records a free-form annotation.
func (c *Collector) Note(t float64, format string, args ...any) {
	c.append(Event{Time: t, Kind: KindNote, Note: fmt.Sprintf(format, args...)})
}

func (c *Collector) append(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Events returns a copy of the recorded events in record order (the DES
// delivers them in simulated-time order).
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// WriteJSONL streams the trace as JSON Lines.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range c.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses a trace previously written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Summary renders a one-line-per-event digest.
func (c *Collector) Summary() string {
	var b strings.Builder
	for _, e := range c.Events() {
		switch e.Kind {
		case KindJobFinish:
			name := e.JobName
			if name == "" {
				name = fmt.Sprintf("job%d", e.Job)
			}
			fmt.Fprintf(&b, "%10.2f  finish   %-16s on r%-3d (ran %.2f)\n", e.Time, name, e.Resource+1, e.Duration)
		case KindArrival:
			fmt.Fprintf(&b, "%10.2f  arrival  %s\n", e.Time, strings.Join(e.Arrived, ","))
		case KindReschedule:
			verdict := "kept"
			if e.Adopted {
				verdict = "ADOPTED"
			}
			cause := e.Trigger
			if cause == "" {
				cause = "event"
			}
			fmt.Fprintf(&b, "%10.2f  resched  %.2f -> %.2f  %s (%s)\n", e.Time, e.Old, e.New, verdict, cause)
		case KindNote:
			fmt.Fprintf(&b, "%10.2f  note     %s\n", e.Time, e.Note)
		}
	}
	return b.String()
}

// Stats aggregates a trace: counts per kind and the busy time per
// resource.
type Stats struct {
	Finishes    int
	Arrivals    int
	Reschedules int
	Adopted     int
	BusyTime    map[grid.ID]float64
}

// Aggregate computes trace statistics.
func (c *Collector) Aggregate() Stats {
	st := Stats{BusyTime: make(map[grid.ID]float64)}
	for _, e := range c.Events() {
		switch e.Kind {
		case KindJobFinish:
			st.Finishes++
			st.BusyTime[e.Resource] += e.Duration
		case KindArrival:
			st.Arrivals++
		case KindReschedule:
			st.Reschedules++
			if e.Adopted {
				st.Adopted++
			}
		}
	}
	return st
}
