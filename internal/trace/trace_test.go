package trace

import (
	"bytes"
	"strings"
	"testing"

	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/obs"
	"aheft/internal/sim"
	"aheft/internal/workload"
)

// runTraced executes the sample scenario with a collector attached.
func runTraced(t *testing.T) (*Collector, *dag.Graph) {
	t.Helper()
	sc := workload.SampleScenario()
	est := sc.Estimator()
	s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(sc.Graph, nil)
	e, err := executor.New(sim.New(), sc.Graph, est, sc.Pool, s0, col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return col, sc.Graph
}

func TestCollectorRecordsExecution(t *testing.T) {
	col, g := runTraced(t)
	st := col.Aggregate()
	if st.Finishes != g.Len() {
		t.Fatalf("finishes = %d, want %d", st.Finishes, g.Len())
	}
	if st.Arrivals != 1 {
		t.Fatalf("arrivals = %d, want 1 (r4 at t=15)", st.Arrivals)
	}
	// Busy time accounting: total equals the sum of actual durations.
	total := 0.0
	for _, v := range st.BusyTime {
		total += v
	}
	if total <= 0 {
		t.Fatal("no busy time recorded")
	}
	// Events are time-ordered.
	evs := col.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestCollectorChainsHandlers(t *testing.T) {
	var forwarded int
	next := executor.EventHandlerFunc(func(ev executor.Event) { forwarded++ })
	sc := workload.SampleScenario()
	est := sc.Estimator()
	s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(sc.Graph, next)
	e, err := executor.New(sim.New(), sc.Graph, est, sc.Pool, s0, col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if forwarded != col.Len() {
		t.Fatalf("forwarded %d of %d events", forwarded, col.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	col, _ := runTraced(t)
	col.Reschedule(15, 80, 76, true, "arrival", 1)
	col.Note(20, "checkpoint %d", 1)
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != col.Len() {
		t.Fatalf("round trip %d of %d events", len(back), col.Len())
	}
	last := back[len(back)-1]
	if last.Kind != KindNote || last.Note != "checkpoint 1" {
		t.Fatalf("note lost: %+v", last)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestSummary(t *testing.T) {
	col, _ := runTraced(t)
	col.Reschedule(15, 80, 76, true, "arrival", 1)
	s := col.Summary()
	for _, want := range []string{"finish", "arrival", "ADOPTED", "n1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestAggregateReschedules(t *testing.T) {
	col := NewCollector(nil, nil)
	col.Reschedule(1, 100, 90, true, "arrival", 1)
	col.Reschedule(2, 90, 95, false, "variance", 0)
	st := col.Aggregate()
	if st.Reschedules != 2 || st.Adopted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCollectorWithoutGraphNamesJobs(t *testing.T) {
	col := NewCollector(nil, nil)
	col.HandleEvent(executor.Event{Time: 1, Finished: 3, OnResource: grid.ID(0), ActualDuration: 5})
	if !strings.Contains(col.Summary(), "job3") {
		t.Fatalf("fallback name missing:\n%s", col.Summary())
	}
}

// TestSpansBridgesRescheduleEvents pins the boundary contract with the
// daemon's span model (internal/obs): only reschedule events map, the
// simulated clock scales to nanoseconds on a zero-based timeline as
// instantaneous spans, and IDs are local 1-based ordinals with no
// parent/link structure.
func TestSpansBridgesRescheduleEvents(t *testing.T) {
	col := NewCollector(nil, nil)
	col.HandleEvent(executor.Event{Time: 1, Finished: 3, OnResource: grid.ID(0), ActualDuration: 5})
	col.Reschedule(12.5, 80, 76, true, "arrival", 2)
	col.Note(13, "irrelevant")
	col.Reschedule(20, 76, 77, false, "variance", 0)

	spans := col.Spans("wf-offline")
	if len(spans) != 2 {
		t.Fatalf("bridged %d spans, want 2 (reschedules only): %+v", len(spans), spans)
	}
	first := spans[0]
	if first.ID != 1 || first.Stage != obs.StageEvaluate || first.Workflow != "wf-offline" {
		t.Fatalf("first span identity: %+v", first)
	}
	if first.Start != int64(12.5*1e9) || first.End != first.Start {
		t.Fatalf("first span clock: %+v", first)
	}
	if first.Trigger != "arrival" || !first.Adopted {
		t.Fatalf("first span decision attrs: %+v", first)
	}
	if first.Parent != 0 || first.Link != 0 {
		t.Fatalf("offline spans must carry no structure: %+v", first)
	}
	second := spans[1]
	if second.ID != 2 || second.Trigger != "variance" || second.Adopted {
		t.Fatalf("second span: %+v", second)
	}
}
