package trace

import (
	"bytes"
	"strings"
	"testing"

	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/sim"
	"aheft/internal/workload"
)

// runTraced executes the sample scenario with a collector attached.
func runTraced(t *testing.T) (*Collector, *dag.Graph) {
	t.Helper()
	sc := workload.SampleScenario()
	est := sc.Estimator()
	s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(sc.Graph, nil)
	e, err := executor.New(sim.New(), sc.Graph, est, sc.Pool, s0, col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return col, sc.Graph
}

func TestCollectorRecordsExecution(t *testing.T) {
	col, g := runTraced(t)
	st := col.Aggregate()
	if st.Finishes != g.Len() {
		t.Fatalf("finishes = %d, want %d", st.Finishes, g.Len())
	}
	if st.Arrivals != 1 {
		t.Fatalf("arrivals = %d, want 1 (r4 at t=15)", st.Arrivals)
	}
	// Busy time accounting: total equals the sum of actual durations.
	total := 0.0
	for _, v := range st.BusyTime {
		total += v
	}
	if total <= 0 {
		t.Fatal("no busy time recorded")
	}
	// Events are time-ordered.
	evs := col.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestCollectorChainsHandlers(t *testing.T) {
	var forwarded int
	next := executor.EventHandlerFunc(func(ev executor.Event) { forwarded++ })
	sc := workload.SampleScenario()
	est := sc.Estimator()
	s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(sc.Graph, next)
	e, err := executor.New(sim.New(), sc.Graph, est, sc.Pool, s0, col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if forwarded != col.Len() {
		t.Fatalf("forwarded %d of %d events", forwarded, col.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	col, _ := runTraced(t)
	col.Reschedule(15, 80, 76, true, "arrival", 1)
	col.Note(20, "checkpoint %d", 1)
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != col.Len() {
		t.Fatalf("round trip %d of %d events", len(back), col.Len())
	}
	last := back[len(back)-1]
	if last.Kind != KindNote || last.Note != "checkpoint 1" {
		t.Fatalf("note lost: %+v", last)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestSummary(t *testing.T) {
	col, _ := runTraced(t)
	col.Reschedule(15, 80, 76, true, "arrival", 1)
	s := col.Summary()
	for _, want := range []string{"finish", "arrival", "ADOPTED", "n1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestAggregateReschedules(t *testing.T) {
	col := NewCollector(nil, nil)
	col.Reschedule(1, 100, 90, true, "arrival", 1)
	col.Reschedule(2, 90, 95, false, "variance", 0)
	st := col.Aggregate()
	if st.Reschedules != 2 || st.Adopted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCollectorWithoutGraphNamesJobs(t *testing.T) {
	col := NewCollector(nil, nil)
	col.HandleEvent(executor.Event{Time: 1, Finished: 3, OnResource: grid.ID(0), ActualDuration: 5})
	if !strings.Contains(col.Summary(), "job3") {
		t.Fatalf("fallback name missing:\n%s", col.Summary())
	}
}
