// Package feedback is the daemon-side runtime-feedback subsystem: the
// half of the paper's Fig. 1 loop that was missing from aheftd. A
// Tracker owns one live workflow's planning state — the scheduling
// kernel, the dense execution snapshot, the current schedule — and folds
// validated wire.Report events into it:
//
//   - job-finished events feed measured runtimes into the tenant's
//     Performance History Repository (internal/history) and are judged
//     for significant variance against its EWMA;
//   - the Predictor (predict.HistoryBased, with the submitted estimate
//     matrix as prior) re-estimates the remaining jobs from that history
//     before every evaluation, so predictions sharpen while the workflow
//     runs;
//   - variance, resource-join and resource-leave events trigger a
//     rescheduling evaluation through the same kernel/policy pipeline
//     the analytic engine uses, under the paper's AHEFT semantics:
//     finished jobs keep their actual intervals, running jobs keep their
//     reservations, and a candidate is adopted only when it beats the
//     current plan's *projected* completion under the current estimates
//     (Fig. 2 line 7 — the projection, not the stale nominal makespan,
//     is the honest S0 side of the comparison once estimates drift).
//
// A Tracker is not safe for concurrent use: the owning shard's single
// worker goroutine is the only caller, preserving the kernel's
// single-goroutine discipline. The history.Repository it feeds IS
// shared — across workflows of the tenant and with metrics readers —
// and is internally synchronised.
package feedback

import (
	"fmt"
	"math"
	"sort"
	"time"

	"aheft/internal/core"
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/history"
	"aheft/internal/kernel"
	"aheft/internal/occupancy"
	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/predict"
	"aheft/internal/schedule"
	"aheft/internal/wire"
)

// DefaultVarianceThreshold is the relative runtime deviation beyond which
// a job-finished event triggers a rescheduling evaluation when the
// submission names no threshold.
const DefaultVarianceThreshold = 0.2

// Config assembles a Tracker.
type Config struct {
	// Graph is the workflow DAG.
	Graph *dag.Graph
	// Prior is the client-supplied estimate matrix, the Predictor's
	// fallback for (op, resource) pairs without history.
	Prior cost.Estimator
	// Pool declares the resource universe: its time-0 arrivals are the
	// initially available set, its later arrivals are *planned* — in live
	// mode a resource actually joins only when a resource-join report
	// says so.
	Pool *grid.Pool
	// History is the tenant's Performance History Repository (shared,
	// thread-safe).
	History *history.Repository
	// Policy drives planning and replanning.
	Policy policy.Policy
	// FastPlan, when non-nil, supplies the *initial* plan instead of
	// Policy — the fast half of the two-speed admission path: under
	// overload the daemon plans with a cheap greedy placement so the
	// workflow starts immediately, then asynchronously re-evaluates with
	// Policy's full pass (Reevaluate with planner.TriggerUpgrade) and
	// adopts the better schedule through the normal decision machinery.
	// Replans always use Policy; FastPlan must produce a real enactable
	// schedule (just-in-time policies are rejected).
	FastPlan policy.Policy
	// Opts tunes the policy.
	Opts policy.Options
	// VarianceThreshold gates finish-variance triggering; <= 0 means
	// DefaultVarianceThreshold.
	VarianceThreshold float64
	// UseMean selects the history mean instead of the recency-weighted
	// EWMA for re-estimation.
	UseMean bool
	// Occupancy, when non-nil, attaches the workflow to a shared grid's
	// reservation ledger: the tracker publishes its own plan's compute
	// intervals through the view (whole-plan on initial planning and
	// every adoption, per-job narrowing as jobs start and finish) and the
	// kernel's slot search treats every other workflow's reservations as
	// busy time. Contention becomes endogenous: concurrent workflows on
	// the grid plan around each other instead of against private pool
	// snapshots.
	Occupancy *occupancy.View
}

type jobPhase uint8

const (
	phasePending jobPhase = iota
	phaseStarted
	phaseFinished
)

// Outcome summarises what one Apply call did.
type Outcome struct {
	// Applied counts the events folded in (the whole batch unless the
	// workflow completed mid-batch).
	Applied int
	// Decisions lists the rescheduling evaluations the batch caused.
	Decisions []planner.Decision
	// Rescheduled reports whether any evaluation was adopted; Trigger is
	// the last adopted one's cause.
	Rescheduled bool
	Trigger     planner.Trigger
	// Done reports workflow completion; Makespan is then the measured
	// completion time.
	Done     bool
	Makespan float64
	// Recorded lists the history observations this batch fed into the
	// tenant's repository, in application order — the durability layer
	// journals them so a recovered repository is bit-identical to one
	// that never crashed (replaying deltas in order reproduces the
	// streaming mean/EWMA arithmetic exactly).
	Recorded []HistoryDelta
}

// Tracker is one live workflow's planning-side state machine.
type Tracker struct {
	g    *dag.Graph
	pool *grid.Pool
	repo *history.Repository
	pol  policy.Policy
	opts policy.Options
	est  *predict.HistoryBased
	thr  float64

	k  *kernel.Kernel
	ks *kernel.State

	sched      *schedule.Schedule
	generation int
	initial    float64

	clock    float64
	phase    []jobPhase
	startAt  []float64
	startRes []grid.ID
	finishAt []float64
	// pinDur holds a revised expected runtime for a running job (variance
	// report); 0 means "ask the estimator".
	pinDur    []float64
	nStarted  int
	nFinished int

	resByID []grid.Resource
	avail   []bool
	nAvail  int

	// Shared-grid state: the ledger view this workflow publishes its
	// reservations through (nil for private-pool workflows).
	occ     *occupancy.View
	resBuf  []occupancy.Reservation
	xferBuf []occupancy.Transfer
	chBuf   []int

	decisions []planner.Decision
	adoptions int
	done      bool
	makespan  float64

	// projection scratch
	projFin []float64
	resFree []float64
	pending []dag.JobID
}

// New plans the workflow over the pool's time-0 resources and returns
// the tracker holding the live run. The initial plan already consults
// the tenant's history (warmed by earlier workflows running the same
// operations); the submitted matrix fills the gaps.
func New(cfg Config) (*Tracker, error) {
	t, err := build(cfg)
	if err != nil {
		return nil, err
	}
	pl := cfg.Policy
	if cfg.FastPlan != nil {
		pl = cfg.FastPlan
	}
	s0, err := pl.Plan(t.k, cfg.Pool, cfg.Opts)
	if err != nil {
		return nil, fmt.Errorf("feedback: initial plan: %w", err)
	}
	t.sched = s0
	t.generation = 1
	t.initial = s0.Makespan()
	t.publishReservations()
	return t, nil
}

// build validates the configuration and assembles an unplanned tracker —
// the shared half of New (which then plans) and Restore (which then
// installs a journalled state).
func build(cfg Config) (*Tracker, error) {
	switch {
	case cfg.Graph == nil || cfg.Graph.Len() == 0:
		return nil, fmt.Errorf("feedback: empty workflow")
	case cfg.Prior == nil:
		return nil, fmt.Errorf("feedback: nil prior estimator")
	case cfg.Pool == nil || cfg.Pool.Size() == 0:
		return nil, fmt.Errorf("feedback: empty pool")
	case len(cfg.Pool.Initial()) == 0:
		return nil, fmt.Errorf("feedback: no resources at time 0")
	case cfg.History == nil:
		return nil, fmt.Errorf("feedback: nil history repository")
	case cfg.Policy == nil:
		return nil, fmt.Errorf("feedback: nil policy")
	case policy.IsJustInTime(cfg.Policy):
		return nil, fmt.Errorf("feedback: policy %q is just-in-time and cannot plan for enactment", cfg.Policy.Name())
	case cfg.FastPlan != nil && policy.IsJustInTime(cfg.FastPlan):
		return nil, fmt.Errorf("feedback: fast-plan policy %q is just-in-time and cannot plan for enactment", cfg.FastPlan.Name())
	}
	n := cfg.Graph.Len()
	t := &Tracker{
		g:    cfg.Graph,
		pool: cfg.Pool,
		repo: cfg.History,
		pol:  cfg.Policy,
		opts: cfg.Opts,
		thr:  cfg.VarianceThreshold,
		est: &predict.HistoryBased{
			Graph:   cfg.Graph,
			Repo:    cfg.History,
			Prior:   cfg.Prior,
			UseEWMA: !cfg.UseMean,
		},
		phase:    make([]jobPhase, n),
		startAt:  make([]float64, n),
		startRes: make([]grid.ID, n),
		finishAt: make([]float64, n),
		pinDur:   make([]float64, n),
		resByID:  make([]grid.Resource, cfg.Pool.Size()),
		avail:    make([]bool, cfg.Pool.Size()),
		projFin:  make([]float64, n),
		resFree:  make([]float64, cfg.Pool.Size()),
	}
	if t.thr <= 0 {
		t.thr = DefaultVarianceThreshold
	}
	for _, a := range cfg.Pool.Arrivals() {
		t.resByID[a.Resource.ID] = a.Resource
	}
	for _, r := range cfg.Pool.Initial() {
		t.avail[r.ID] = true
		t.nAvail++
	}
	t.k = kernel.New(cfg.Graph, t.est)
	if cfg.Opts.Data != nil {
		// Bind before NewState so the dense snapshot's file ledger is
		// shaped for the model.
		t.k.SetData(cfg.Opts.Data)
	}
	t.ks = t.k.NewState(cfg.Pool.Size())
	if cfg.Occupancy != nil {
		// Attach before planning: the initial plan already routes around
		// the other workflows' reservations.
		t.occ = cfg.Occupancy
		t.k.SetOccupancy(cfg.Occupancy)
	}
	return t, nil
}

// publishReservations replaces this workflow's entries in the shared
// ledger with the current plan's compute intervals: pending jobs at
// their scheduled slots, running jobs at their live pins. Finished jobs
// are history, not claims.
func (t *Tracker) publishReservations() {
	if t.occ == nil {
		return
	}
	rs := t.resBuf[:0]
	for j := 0; j < t.g.Len(); j++ {
		id := dag.JobID(j)
		switch t.phase[j] {
		case phaseFinished:
			continue
		case phaseStarted:
			dur := t.pinDur[j]
			if dur <= 0 {
				dur = t.est.Comp(id, t.startRes[j])
			}
			fin := t.startAt[j] + dur
			if fin < t.clock {
				fin = t.clock
			}
			rs = append(rs, occupancy.Reservation{
				Job: j, Resource: t.startRes[j], Start: t.startAt[j], Finish: fin, Pinned: true,
			})
		default:
			a := t.sched.MustGet(id)
			rs = append(rs, occupancy.Reservation{
				Job: j, Resource: a.Resource, Start: a.Start, Finish: a.Finish,
			})
		}
	}
	t.resBuf = rs
	t.occ.Publish(rs)
	t.publishTransfers()
}

// publishTransfers replaces this workflow's transfer reservations with
// the current plan's stagings for jobs that have not started yet: each
// schedule.Transfer claims every capacity channel on its src→dst path
// (one ledger entry per channel, as data.Model names them). Once a job
// starts its inputs are materialized and the claims are released — the
// per-job narrowing that mirrors the compute side.
func (t *Tracker) publishTransfers() {
	m := t.k.Data()
	if m == nil {
		return
	}
	ts := t.xferBuf[:0]
	for _, tr := range t.sched.Transfers() {
		if t.phase[tr.Job] != phasePending {
			continue
		}
		t.chBuf = m.AppendChannels(tr.From, tr.To, t.chBuf[:0])
		for _, c := range t.chBuf {
			ts = append(ts, occupancy.Transfer{
				Job: int(tr.Job), File: tr.File, Channel: m.ChannelName(c),
				Start: tr.Start, Finish: tr.Finish,
			})
		}
	}
	t.xferBuf = ts
	t.occ.PublishTransfers(ts)
}

// Plan returns the schedule the daemon currently wants enacted.
func (t *Tracker) Plan() *schedule.Schedule { return t.sched }

// Generation returns the plan generation (1 = initial plan).
func (t *Tracker) Generation() int { return t.generation }

// InitialMakespan returns the initial plan's predicted makespan.
func (t *Tracker) InitialMakespan() float64 { return t.initial }

// Clock returns the latest reported time.
func (t *Tracker) Clock() float64 { return t.clock }

// Done reports completion; Makespan is then the measured completion time.
func (t *Tracker) Done() bool { return t.done }

// Makespan returns the measured completion time (0 before Done).
func (t *Tracker) Makespan() float64 { return t.makespan }

// Decisions returns every rescheduling evaluation so far (shared slice;
// callers must not mutate).
func (t *Tracker) Decisions() []planner.Decision { return t.decisions }

// Adoptions counts adopted reschedules.
func (t *Tracker) Adoptions() int { return t.adoptions }

// Available returns the currently available resources in ID order.
func (t *Tracker) Available() []grid.Resource {
	out := make([]grid.Resource, 0, t.nAvail)
	for id, ok := range t.avail {
		if ok {
			out = append(out, t.resByID[id])
		}
	}
	return out
}

// Apply validates the batch against the live run and, only if every
// event is acceptable, folds it in — reports are all-or-nothing, so a
// rejected batch leaves the run untouched and the reporter can repair
// and resend. The returned Outcome says what changed. Events after the
// completing job-finished are ignored (Applied reports the prefix).
func (t *Tracker) Apply(events []wire.ReportEvent) (*Outcome, error) {
	if t.done {
		return nil, fmt.Errorf("feedback: workflow already complete")
	}
	if err := t.validate(events); err != nil {
		return nil, err
	}
	out := &Outcome{}
	for _, ev := range events {
		t.clock = ev.Time
		switch ev.Kind {
		case wire.ReportJobStarted:
			j := dag.JobID(ev.Job)
			t.phase[j] = phaseStarted
			t.startAt[j] = ev.Time
			t.startRes[j] = grid.ID(ev.Resource)
			t.nStarted++
			if t.occ != nil {
				// The claim moves from the planned slot to the actual one
				// (the job may have started late, or on a resource the
				// plan moved it off an instant too late to matter).
				t.occ.Update(occupancy.Reservation{
					Job: ev.Job, Resource: grid.ID(ev.Resource),
					Start: ev.Time, Finish: ev.Time + t.est.Comp(j, grid.ID(ev.Resource)),
				})
				// A started job has its inputs in hand; its staging claims
				// on the links are spent, not pending.
				t.occ.ReleaseJobTransfers(ev.Job)
			}
		case wire.ReportJobFinished:
			t.applyFinish(ev, out)
		case wire.ReportVariance:
			j := dag.JobID(ev.Job)
			if ev.Duration > 0 {
				t.pinDur[j] = ev.Duration
			}
			t.evaluate(planner.TriggerVariance, 0, out)
		case wire.ReportResourceJoin:
			t.avail[ev.Resource] = true
			t.nAvail++
			t.evaluate(planner.TriggerArrival, 1, out)
		case wire.ReportResourceLeave:
			t.avail[ev.Resource] = false
			t.nAvail--
			t.evaluate(planner.TriggerDeparture, 0, out)
		}
		out.Applied++
		if t.done {
			out.Done = true
			out.Makespan = t.makespan
			break
		}
	}
	return out, nil
}

// Reevaluate runs one rescheduling evaluation outside the report path, at
// the run's current clock and resource view. The shard calls it on the
// survivors of a shared grid when another workflow's reservations
// release (job finishes, terminal drain): freed capacity is a run-time
// event exactly like a resource arrival, except the "resource" that
// changed hands is another tenant's claim. The returned Outcome carries
// the decision (and adoption) like an Apply would.
func (t *Tracker) Reevaluate(trigger planner.Trigger) *Outcome {
	out := &Outcome{}
	if t.done {
		return out
	}
	t.evaluate(trigger, 0, out)
	return out
}

// ForeignReservations returns how many reservations the other workflows
// on the shared grid currently hold (0 off-grid).
func (t *Tracker) ForeignReservations() int {
	if t.occ == nil {
		return 0
	}
	return t.occ.ForeignCount()
}

// validate checks the whole batch against the run's current state plus
// the batch's own earlier events, so Apply never half-applies a report.
func (t *Tracker) validate(events []wire.ReportEvent) error {
	clock := t.clock
	n := t.g.Len()
	phase := map[dag.JobID]jobPhase{}
	startRes := map[dag.JobID]grid.ID{}
	avail := map[grid.ID]bool{}
	phaseOf := func(j dag.JobID) jobPhase {
		if p, ok := phase[j]; ok {
			return p
		}
		return t.phase[j]
	}
	availOf := func(r grid.ID) bool {
		if a, ok := avail[r]; ok {
			return a
		}
		return t.avail[r]
	}
	finished := t.nFinished
	for i, ev := range events {
		if ev.Time < clock {
			return fmt.Errorf("feedback: event %d time %g before run clock %g (non-monotonic)", i, ev.Time, clock)
		}
		clock = ev.Time
		if finished == n {
			// Everything after the completing finish is dead weight but
			// harmless: Apply stops there anyway.
			continue
		}
		switch ev.Kind {
		case wire.ReportJobStarted:
			j := dag.JobID(ev.Job)
			if ev.Job >= n {
				return fmt.Errorf("feedback: event %d job %d out of range (workflow has %d jobs)", i, ev.Job, n)
			}
			if p := phaseOf(j); p != phasePending {
				return fmt.Errorf("feedback: event %d starts job %d twice", i, ev.Job)
			}
			r := grid.ID(ev.Resource)
			if ev.Resource >= t.pool.Size() {
				return fmt.Errorf("feedback: event %d resource %d out of range (universe has %d)", i, ev.Resource, t.pool.Size())
			}
			if !availOf(r) {
				return fmt.Errorf("feedback: event %d starts job %d on unavailable resource %d", i, ev.Job, ev.Resource)
			}
			phase[j] = phaseStarted
			startRes[j] = r
		case wire.ReportJobFinished:
			j := dag.JobID(ev.Job)
			if ev.Job >= n {
				return fmt.Errorf("feedback: event %d job %d out of range (workflow has %d jobs)", i, ev.Job, n)
			}
			switch phaseOf(j) {
			case phasePending:
				return fmt.Errorf("feedback: event %d finishes job %d before it started", i, ev.Job)
			case phaseFinished:
				return fmt.Errorf("feedback: event %d finishes job %d twice", i, ev.Job)
			}
			if ev.Resource != 0 {
				want := t.startRes[j]
				if r, ok := startRes[j]; ok {
					want = r
				}
				if grid.ID(ev.Resource) != want {
					return fmt.Errorf("feedback: event %d finishes job %d on resource %d, started on %d", i, ev.Job, ev.Resource, want)
				}
			}
			phase[j] = phaseFinished
			finished++
		case wire.ReportVariance:
			j := dag.JobID(ev.Job)
			if ev.Job >= n {
				return fmt.Errorf("feedback: event %d job %d out of range (workflow has %d jobs)", i, ev.Job, n)
			}
			if phaseOf(j) != phaseStarted {
				return fmt.Errorf("feedback: event %d reports variance on job %d, which is not running", i, ev.Job)
			}
		case wire.ReportResourceJoin:
			r := grid.ID(ev.Resource)
			if ev.Resource >= t.pool.Size() {
				return fmt.Errorf("feedback: event %d resource %d out of range (universe has %d)", i, ev.Resource, t.pool.Size())
			}
			if availOf(r) {
				return fmt.Errorf("feedback: event %d joins resource %d, which is already available", i, ev.Resource)
			}
			avail[r] = true
		case wire.ReportResourceLeave:
			r := grid.ID(ev.Resource)
			if ev.Resource >= t.pool.Size() {
				return fmt.Errorf("feedback: event %d resource %d out of range (universe has %d)", i, ev.Resource, t.pool.Size())
			}
			if !availOf(r) {
				return fmt.Errorf("feedback: event %d removes resource %d, which is not available", i, ev.Resource)
			}
			avail[r] = false
		}
	}
	return nil
}

// applyFinish is the Performance Monitor path: record the measured
// runtime, judge it for significant variance, update the execution
// snapshot (actual interval + ship-on-finish transfer ledger), and —
// when the deviation is significant — evaluate a reschedule.
func (t *Tracker) applyFinish(ev wire.ReportEvent, out *Outcome) {
	j := dag.JobID(ev.Job)
	r := t.startRes[j]
	d := ev.Duration
	if d <= 0 {
		d = ev.Time - t.startAt[j]
	}
	op := t.g.Job(j).Op
	variance, hasHistory := 0.0, false
	if d > 0 {
		// Judge against the history *excluding* this observation, as the
		// event-driven Service does.
		variance, hasHistory = t.repo.Variance(op, r, d)
		_ = t.repo.Record(op, r, d)
		out.Recorded = append(out.Recorded, HistoryDelta{Op: op, Resource: int(r), Duration: d})
	}
	t.phase[j] = phaseFinished
	t.finishAt[j] = ev.Time
	t.nFinished++
	if t.occ != nil {
		t.occ.ReleaseJob(ev.Job)
	}
	t.ks.Finish(j, r, t.startAt[j], ev.Time)
	// Static ship-on-finish policy (§4.1 assumption 2): the output file is
	// on the producer's resource now and starts moving toward each
	// consumer's currently scheduled resource.
	for _, e := range t.g.Succs(j) {
		t.ks.SetTransfer(j, e.To, r, ev.Time)
		if sa, ok := t.sched.Get(e.To); ok {
			t.ks.SetTransfer(j, e.To, sa.Resource, ev.Time+t.k.CommEst(e, r, sa.Resource))
		}
	}
	if t.nFinished == t.g.Len() {
		t.done = true
		t.makespan = 0
		for j := range t.finishAt {
			if t.phase[j] == phaseFinished && t.finishAt[j] > t.makespan {
				t.makespan = t.finishAt[j]
			}
		}
		return
	}
	if hasHistory && variance > t.thr {
		t.evaluate(planner.TriggerVariance, 0, out)
	}
}

// syncPins rebuilds the snapshot's pinned set at evaluation clock clk:
// each running job keeps its reservation, with an expected finish from
// the revised duration (variance report) or the current estimate, never
// earlier than clk (a job still running now cannot already have ended).
func (t *Tracker) syncPins(clk float64) {
	t.ks.Clock = clk
	t.ks.ClearPinned()
	for j := 0; j < t.g.Len(); j++ {
		if t.phase[j] != phaseStarted {
			continue
		}
		id := dag.JobID(j)
		dur := t.pinDur[j]
		if dur <= 0 {
			dur = t.est.Comp(id, t.startRes[j])
		}
		fin := t.startAt[j] + dur
		if fin < clk {
			fin = clk
		}
		t.ks.Pin(schedule.Assignment{Job: id, Resource: t.startRes[j], Start: t.startAt[j], Finish: fin})
	}
}

// evaluate is the Fig. 2 loop body at one run-time event: replan the
// remaining jobs over the live resource set with history-sharpened
// estimates, compare against the current plan's projection, adopt on
// strict improvement. A projection of +Inf (the current plan places a
// pending job on a departed resource) forces adoption of any feasible
// candidate.
func (t *Tracker) evaluate(trigger planner.Trigger, arrived int, out *Outcome) {
	rs := t.Available()
	if len(rs) == 0 {
		return // nothing to plan over; keep the stale plan until a join
	}
	t.syncPins(t.clock)
	// The estimator mutates underneath the kernel as history accrues. The
	// HistoryBased predictor is versioned, so the kernel detects stale
	// ranks (and stale delta memos) itself; only an unversioned estimator
	// needs the explicit invalidation, which would also wipe the rank
	// cache the delta path relies on.
	if _, versioned := any(t.est).(kernel.VersionedEstimator); !versioned {
		t.k.InvalidateRanks()
	}
	// Live evaluations default to the incremental path: the kernel falls
	// back to a full replan whenever it cannot prove the event's dirty
	// cone small (and bit-identity is parity-tested), so this is purely a
	// latency lever. An upgrade evaluation is the exception — its whole
	// point is the full rank-and-insertion pass the fast admission plan
	// skipped, so the delta shortcut is off.
	opts := t.opts
	opts.Incremental = trigger != planner.TriggerUpgrade
	began := time.Now()
	s1, err := t.pol.Replan(t.k, rs, t.ks, opts)
	elapsed := time.Since(began)
	if err != nil || s1 == nil {
		// Evaluation failure must not kill the run ("otherwise the
		// Planner does not take any action"); a nil proposal means the
		// policy has nothing to say for this event.
		return
	}
	cur := t.Project()
	d := planner.Decision{
		Clock:        t.clock,
		PoolSize:     len(rs),
		OldMakespan:  cur,
		NewMakespan:  s1.Makespan(),
		JobsFinished: t.nFinished,
		Trigger:      trigger,
		ArrivedCount: arrived,
		ElapsedMs:    float64(elapsed) / float64(time.Millisecond),
	}
	if ds := t.k.DeltaStats(); ds.Attempted {
		if ds.Delta {
			d.Path = "delta"
			d.ConeSize = ds.Cone
		} else {
			d.Path = "full"
			d.FallbackReason = ds.Reason
		}
	}
	if tm := t.k.LastTiming(); tm.RankMs > 0 || tm.PlaceMs > 0 {
		d.RankMs, d.PlaceMs = tm.RankMs, tm.PlaceMs
	}
	if core.Better(cur, s1.Makespan(), t.opts.Eps) {
		d.Adopted = true
		t.adopt(s1)
		out.Rescheduled = true
		out.Trigger = trigger
	}
	t.decisions = append(t.decisions, d)
	if d.Adopted {
		t.adoptions++
	}
	out.Decisions = append(out.Decisions, d)
}

// adopt installs s1 and mirrors the Execution Manager's input staging on
// resubmit: a rescheduled job whose finished predecessor's file was
// never directed at its new resource gets a fresh transfer starting now
// (Eq. 1 Case 2 made physical) — exactly what the analytic runner does
// on adoption.
func (t *Tracker) adopt(s1 *schedule.Schedule) {
	t.sched = s1
	t.generation++
	defer t.publishReservations()
	for _, jb := range t.g.Jobs() {
		if t.phase[jb.ID] != phasePending {
			continue
		}
		a1 := s1.MustGet(jb.ID)
		for _, e := range t.g.Preds(jb.ID) {
			if t.phase[e.From] != phaseFinished {
				continue
			}
			if t.ks.HasTransfer(e.From, jb.ID, a1.Resource) {
				continue
			}
			pr := t.startRes[e.From]
			t.ks.SetTransfer(e.From, jb.ID, a1.Resource, t.clock+t.k.CommEst(e, pr, a1.Resource))
		}
	}
}

// Project computes the current plan's expected completion under the
// current estimates and execution state: finished jobs at their actual
// times, running jobs at their pinned finishes, and every pending job
// retimed on its scheduled resource in the schedule's own order. It
// returns +Inf when the plan is infeasible (a pending job's resource
// left the pool) — the signal that forces the next evaluation to adopt.
func (t *Tracker) Project() float64 {
	n := t.g.Len()
	mk := 0.0
	for i := range t.resFree {
		t.resFree[i] = 0
	}
	pend := t.pending[:0]
	for j := 0; j < n; j++ {
		id := dag.JobID(j)
		switch t.phase[j] {
		case phaseFinished:
			t.projFin[j] = t.finishAt[j]
		case phaseStarted:
			dur := t.pinDur[j]
			if dur <= 0 {
				dur = t.est.Comp(id, t.startRes[j])
			}
			fin := t.startAt[j] + dur
			if fin < t.clock {
				fin = t.clock
			}
			t.projFin[j] = fin
			if fin > t.resFree[t.startRes[j]] {
				t.resFree[t.startRes[j]] = fin
			}
		default:
			pend = append(pend, id)
		}
		if t.phase[j] != phasePending && t.projFin[j] > mk {
			mk = t.projFin[j]
		}
	}
	t.pending = pend
	// Schedule order: pending jobs sorted by planned start reproduce both
	// the per-resource queue order and a dependency-compatible global
	// order (a predecessor always starts strictly earlier in a valid
	// schedule with positive durations).
	sort.Slice(pend, func(a, b int) bool {
		sa, sb := t.sched.MustGet(pend[a]).Start, t.sched.MustGet(pend[b]).Start
		if sa != sb {
			return sa < sb
		}
		return pend[a] < pend[b]
	})
	for _, j := range pend {
		a := t.sched.MustGet(j)
		if int(a.Resource) >= len(t.avail) || !t.avail[a.Resource] {
			return math.Inf(1)
		}
		ready := t.clock
		for _, e := range t.g.Preds(j) {
			m := e.From
			var at float64
			switch t.phase[m] {
			case phaseFinished:
				if tt, ok := t.ks.TransferAt(m, j, a.Resource); ok {
					at = tt
				} else {
					at = t.clock + t.k.CommEst(e, t.startRes[m], a.Resource)
				}
			case phaseStarted:
				at = t.projFin[m]
				if t.startRes[m] != a.Resource {
					at += t.k.CommEst(e, t.startRes[m], a.Resource)
				}
			default:
				at = t.projFin[m]
				if pr := t.sched.MustGet(m).Resource; pr != a.Resource {
					at += t.k.CommEst(e, pr, a.Resource)
				}
			}
			if at > ready {
				ready = at
			}
		}
		start := ready
		if t.resFree[a.Resource] > start {
			start = t.resFree[a.Resource]
		}
		fin := start + t.est.Comp(j, a.Resource)
		t.projFin[j] = fin
		t.resFree[a.Resource] = fin
		if fin > mk {
			mk = fin
		}
	}
	return mk
}

// WhatIf answers the paper's §3.3 capacity question against the live
// run: what would the expected makespan become if the listed resources
// (indices into the submitted universe) joined or left right now?
// Running jobs on hypothetically removed resources are restarted
// elsewhere (the compute slot is gone); files already produced remain
// reachable (storage outlives the slot), matching planner.WhatIf. The
// evaluation is tentative: the tracker's plan and state are unchanged.
func (t *Tracker) WhatIf(q wire.WhatIfRequest) (*wire.WhatIfDoc, error) {
	if t.done {
		return nil, fmt.Errorf("feedback: workflow already complete")
	}
	if math.IsNaN(q.Clock) || math.IsInf(q.Clock, 0) {
		return nil, fmt.Errorf("feedback: what-if clock %g is not finite", q.Clock)
	}
	clk := q.Clock
	if clk < t.clock {
		clk = t.clock
	}
	removed := make(map[grid.ID]bool, len(q.Remove))
	for _, id := range q.Remove {
		if id < 0 || id >= t.pool.Size() {
			return nil, fmt.Errorf("feedback: what-if resource %d out of range (universe has %d)", id, t.pool.Size())
		}
		removed[grid.ID(id)] = true
	}
	hyp := make(map[grid.ID]bool, t.nAvail+len(q.Add))
	for id, ok := range t.avail {
		if ok {
			hyp[grid.ID(id)] = true
		}
	}
	for _, id := range q.Add {
		if id < 0 || id >= t.pool.Size() {
			return nil, fmt.Errorf("feedback: what-if resource %d out of range (universe has %d)", id, t.pool.Size())
		}
		hyp[grid.ID(id)] = true
	}
	for id := range removed {
		delete(hyp, id)
	}
	if len(hyp) == 0 {
		return nil, fmt.Errorf("feedback: what-if leaves an empty pool")
	}
	rs := make([]grid.Resource, 0, len(hyp))
	for id := range hyp {
		rs = append(rs, t.resByID[id])
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })

	// Hypothetical pins: running jobs keep reservations unless their
	// resource is removed, in which case they restart.
	t.syncPins(clk)
	if len(removed) > 0 {
		t.ks.ClearPinned()
		for j := 0; j < t.g.Len(); j++ {
			if t.phase[j] != phaseStarted || removed[t.startRes[j]] {
				continue
			}
			id := dag.JobID(j)
			dur := t.pinDur[j]
			if dur <= 0 {
				dur = t.est.Comp(id, t.startRes[j])
			}
			fin := t.startAt[j] + dur
			if fin < clk {
				fin = clk
			}
			t.ks.Pin(schedule.Assignment{Job: id, Resource: t.startRes[j], Start: t.startAt[j], Finish: fin})
		}
	}
	t.k.InvalidateRanks()
	s1, err := t.pol.Replan(t.k, rs, t.ks, t.opts)
	if err != nil {
		return nil, fmt.Errorf("feedback: what-if reschedule: %w", err)
	}
	if s1 == nil {
		return nil, fmt.Errorf("feedback: policy %q proposes no hypothetical schedule", t.pol.Name())
	}
	cur := t.Project()
	doc := &wire.WhatIfDoc{
		Clock:               clk,
		PoolSize:            len(rs),
		CurrentMakespan:     cur,
		NewMakespan:         s1.Makespan(),
		Delta:               s1.Makespan() - cur,
		WouldAdopt:          core.Better(cur, s1.Makespan(), t.opts.Eps),
		ForeignReservations: t.ForeignReservations(),
	}
	if math.IsInf(cur, 1) {
		// The current plan is infeasible (a pending job's resource left);
		// JSON cannot carry +Inf, so the document uses the -1 sentinel and
		// any feasible candidate would be adopted.
		doc.CurrentMakespan = -1
		doc.Delta = 0
		doc.WouldAdopt = true
	}
	return doc, nil
}
