package feedback

import (
	"fmt"
	"math"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/occupancy"
	"aheft/internal/planner"
	"aheft/internal/schedule"
	"aheft/internal/wire"
)

// HistoryDelta is one measured-runtime observation fed into the tenant's
// Performance History Repository. The durability layer journals the
// deltas of every Apply batch (Outcome.Recorded): a recovered repository
// is rebuilt by importing the last snapshot's cells and replaying the
// deltas in log order, reproducing the streaming statistics bit for bit.
type HistoryDelta struct {
	Op       string  `json:"op"`
	Resource int     `json:"resource"`
	Duration float64 `json:"duration"`
}

// TransferState is one entry of the kernel's file-availability ledger
// (Eq. 1): the (From → To) file is available on Resource at time At.
type TransferState struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Resource int     `json:"resource"`
	At       float64 `json:"at"`
}

// TrackerState is the serialisable form of a Tracker's mutable run
// state — everything Restore needs, on top of the (re-derivable) Config,
// to reproduce the tracker exactly. ExportState → Restore → ExportState
// is the identity; the recovery property tests pin that down.
//
// The snapshot's pinned set is NOT persisted: syncPins rebuilds it from
// phase/startAt/pinDur before every evaluation, so it carries no
// independent information.
type TrackerState struct {
	Generation  int               `json:"generation"`
	Initial     float64           `json:"initial"`
	Clock       float64           `json:"clock"`
	Assignments []wire.Assignment `json:"assignments"`
	Phase       []uint8           `json:"phase"`
	StartAt     []float64         `json:"start_at"`
	StartRes    []int             `json:"start_res"`
	FinishAt    []float64         `json:"finish_at"`
	PinDur      []float64         `json:"pin_dur"`
	Avail       []bool            `json:"avail"`
	Decisions   []wire.Decision   `json:"decisions,omitempty"`
	Adoptions   int               `json:"adoptions"`
	Done        bool              `json:"done"`
	Makespan    float64           `json:"makespan"`
	Transfers   []TransferState   `json:"transfers,omitempty"`
	// Reservations is the workflow's shared-grid reservation set as the
	// ledger held it at export time (nil off-grid). Restore republishes
	// these verbatim rather than recomputing from estimates, so a grid
	// ledger reassembled from its restored residents is bit-identical to
	// the one that never crashed even where estimate drift would retime
	// a running job's expected finish.
	Reservations []occupancy.Reservation `json:"reservations,omitempty"`
}

// ExportState snapshots the tracker's mutable run state. The caller owns
// the result; the tracker is unchanged.
func (t *Tracker) ExportState() *TrackerState {
	n := t.g.Len()
	st := &TrackerState{
		Generation: t.generation,
		Initial:    t.initial,
		Clock:      t.clock,
		Phase:      make([]uint8, n),
		StartAt:    make([]float64, n),
		StartRes:   make([]int, n),
		FinishAt:   make([]float64, n),
		PinDur:     make([]float64, n),
		Avail:      make([]bool, t.pool.Size()),
		Adoptions:  t.adoptions,
		Done:       t.done,
		Makespan:   t.makespan,
	}
	for j := 0; j < n; j++ {
		st.Phase[j] = uint8(t.phase[j])
		st.StartAt[j] = t.startAt[j]
		st.StartRes[j] = int(t.startRes[j])
		st.FinishAt[j] = t.finishAt[j]
		st.PinDur[j] = t.pinDur[j]
	}
	copy(st.Avail, t.avail)
	as := t.sched.Assignments()
	st.Assignments = make([]wire.Assignment, 0, len(as))
	for _, a := range as {
		st.Assignments = append(st.Assignments, wire.Assignment{
			Job: int(a.Job), Resource: int(a.Resource), Start: a.Start, Finish: a.Finish,
		})
	}
	// Assignments() orders by start time; re-sort by job so the exported
	// form is canonical regardless of schedule shape.
	sortAssignmentsByJob(st.Assignments)
	if len(t.decisions) > 0 {
		st.Decisions = make([]wire.Decision, 0, len(t.decisions))
		for _, d := range t.decisions {
			st.Decisions = append(st.Decisions, DecisionToWire(d))
		}
	}
	t.ks.ForEachTransfer(func(from, to dag.JobID, r grid.ID, at float64) {
		st.Transfers = append(st.Transfers, TransferState{
			From: int(from), To: int(to), Resource: int(r), At: at,
		})
	})
	if t.occ != nil {
		st.Reservations = t.occ.Own()
	}
	return st
}

func sortAssignmentsByJob(as []wire.Assignment) {
	// Insertion sort: n is small and the slice is nearly sorted already.
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j].Job < as[j-1].Job; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// Restore rebuilds a tracker from a journalled state: the same
// validation and assembly as New, but installing the persisted schedule,
// execution progress, transfer ledger and decision log instead of
// planning afresh. cfg.History must already hold the tenant's recovered
// repository — Restore does not replay observations. The restored
// tracker publishes its reservations into cfg.Occupancy exactly as the
// original had, so a shared grid's ledger reassembles from its residents.
func Restore(cfg Config, st *TrackerState) (*Tracker, error) {
	if st == nil {
		return nil, fmt.Errorf("feedback: nil state")
	}
	t, err := build(cfg)
	if err != nil {
		return nil, err
	}
	n := t.g.Len()
	ps := t.pool.Size()
	switch {
	case st.Generation < 1:
		return nil, fmt.Errorf("feedback: restore: generation %d < 1", st.Generation)
	case len(st.Phase) != n || len(st.StartAt) != n || len(st.StartRes) != n ||
		len(st.FinishAt) != n || len(st.PinDur) != n:
		return nil, fmt.Errorf("feedback: restore: job arrays sized for %d jobs, workflow has %d", len(st.Phase), n)
	case len(st.Avail) != ps:
		return nil, fmt.Errorf("feedback: restore: availability sized for %d resources, universe has %d", len(st.Avail), ps)
	case len(st.Assignments) != n:
		return nil, fmt.Errorf("feedback: restore: schedule covers %d of %d jobs", len(st.Assignments), n)
	case math.IsNaN(st.Clock) || math.IsInf(st.Clock, 0):
		return nil, fmt.Errorf("feedback: restore: clock %g is not finite", st.Clock)
	}
	// Pre-validate the schedule: FromAssignments panics on bad input, and
	// a recovery path must degrade to an error, not a crash.
	as := make([]schedule.Assignment, len(st.Assignments))
	seen := make([]bool, n)
	for i, a := range st.Assignments {
		switch {
		case a.Job < 0 || a.Job >= n:
			return nil, fmt.Errorf("feedback: restore: assignment job %d out of range", a.Job)
		case seen[a.Job]:
			return nil, fmt.Errorf("feedback: restore: job %d assigned twice", a.Job)
		case a.Resource < 0 || a.Resource >= ps:
			return nil, fmt.Errorf("feedback: restore: job %d on resource %d, universe has %d", a.Job, a.Resource, ps)
		case math.IsNaN(a.Start) || math.IsNaN(a.Finish) || a.Finish < a.Start:
			return nil, fmt.Errorf("feedback: restore: job %d interval [%g,%g) invalid", a.Job, a.Start, a.Finish)
		}
		seen[a.Job] = true
		as[i] = schedule.Assignment{
			Job: dag.JobID(a.Job), Resource: grid.ID(a.Resource), Start: a.Start, Finish: a.Finish,
		}
	}
	t.sched = schedule.FromAssignments(as)
	t.generation = st.Generation
	t.initial = st.Initial
	t.clock = st.Clock
	t.adoptions = st.Adoptions
	t.done = st.Done
	t.makespan = st.Makespan
	// The persisted availability replaces build's time-0 view: joins and
	// leaves already reported are part of the state.
	t.nAvail = 0
	for i, ok := range st.Avail {
		t.avail[i] = ok
		if ok {
			t.nAvail++
		}
	}
	t.nStarted, t.nFinished = 0, 0
	for j := 0; j < n; j++ {
		ph := jobPhase(st.Phase[j])
		if ph > phaseFinished {
			return nil, fmt.Errorf("feedback: restore: job %d has unknown phase %d", j, st.Phase[j])
		}
		if ph != phasePending && (st.StartRes[j] < 0 || st.StartRes[j] >= ps) {
			return nil, fmt.Errorf("feedback: restore: job %d started on resource %d, universe has %d", j, st.StartRes[j], ps)
		}
		t.phase[j] = ph
		t.startAt[j] = st.StartAt[j]
		t.startRes[j] = grid.ID(st.StartRes[j])
		t.finishAt[j] = st.FinishAt[j]
		t.pinDur[j] = st.PinDur[j]
		switch ph {
		case phaseStarted:
			t.nStarted++
		case phaseFinished:
			t.nStarted++
			t.nFinished++
			t.ks.Finish(dag.JobID(j), t.startRes[j], t.startAt[j], t.finishAt[j])
		}
	}
	t.ks.Clock = st.Clock
	// Replay the transfer ledger in its exported order: a fresh ledger
	// keeps the first recorded time per entry, so this reproduces it
	// exactly even where adoption-time transfers overwrote earlier ETAs.
	for _, tr := range st.Transfers {
		if tr.From < 0 || tr.From >= n || tr.To < 0 || tr.To >= n || tr.Resource < 0 {
			return nil, fmt.Errorf("feedback: restore: transfer (%d->%d on %d) out of range", tr.From, tr.To, tr.Resource)
		}
		t.ks.SetTransfer(dag.JobID(tr.From), dag.JobID(tr.To), grid.ID(tr.Resource), tr.At)
	}
	if len(st.Decisions) > 0 {
		t.decisions = make([]planner.Decision, 0, len(st.Decisions))
		for i, wd := range st.Decisions {
			d, err := DecisionFromWire(wd)
			if err != nil {
				return nil, fmt.Errorf("feedback: restore: decision %d: %w", i, err)
			}
			t.decisions = append(t.decisions, d)
		}
	}
	if t.occ != nil && !t.done {
		// Republish the journalled reservation set verbatim; the next
		// adoption recomputes it wholesale, exactly as live operation
		// would.
		t.resBuf = append(t.resBuf[:0], st.Reservations...)
		t.occ.Publish(t.resBuf)
	}
	return t, nil
}

// AlreadyApplied reports whether the batch is a replay of events the
// tracker has already folded in — the idempotency check behind
// crash-consistent report acks. A client that reported just before the
// daemon died retries the identical batch after recovery; the recovered
// state already includes it (the WAL record covers the post-apply
// state), so Apply would reject the events as non-monotonic. The server
// answers such a replay with a synthetic success ack instead.
//
// The check is conservative: every event must lie at or before the run
// clock AND be consistent with the current state under its kind's
// semantics (a started job is no longer pending on that resource at that
// time, a finished job finished at that time, a joined resource is
// available, ...). Partially novel batches return false and flow through
// Apply's normal validation. Availability toggles that have since
// toggled back (join then leave) also return false — a replay window
// only ever spans the single in-flight batch, never a later state
// change.
func (t *Tracker) AlreadyApplied(events []wire.ReportEvent) bool {
	if len(events) == 0 {
		return false
	}
	n := t.g.Len()
	for _, ev := range events {
		if ev.Time > t.clock {
			return false
		}
		switch ev.Kind {
		case wire.ReportJobStarted:
			if ev.Job < 0 || ev.Job >= n || t.phase[ev.Job] == phasePending {
				return false
			}
			if t.startAt[ev.Job] != ev.Time || t.startRes[ev.Job] != grid.ID(ev.Resource) {
				return false
			}
		case wire.ReportJobFinished:
			if ev.Job < 0 || ev.Job >= n || t.phase[ev.Job] != phaseFinished {
				return false
			}
			if t.finishAt[ev.Job] != ev.Time {
				return false
			}
		case wire.ReportVariance:
			if ev.Job < 0 || ev.Job >= n || t.phase[ev.Job] == phasePending {
				return false
			}
		case wire.ReportResourceJoin:
			if ev.Resource < 0 || ev.Resource >= t.pool.Size() || !t.avail[ev.Resource] {
				return false
			}
		case wire.ReportResourceLeave:
			if ev.Resource < 0 || ev.Resource >= t.pool.Size() || t.avail[ev.Resource] {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// DecisionToWire converts a planner decision to its wire form (+Inf
// projections become the -1 sentinel, JSON cannot carry infinities).
func DecisionToWire(d planner.Decision) wire.Decision {
	old := d.OldMakespan
	if math.IsInf(old, 1) {
		old = -1
	}
	return wire.Decision{
		Clock:        d.Clock,
		PoolSize:     d.PoolSize,
		OldMakespan:  old,
		NewMakespan:  d.NewMakespan,
		Adopted:      d.Adopted,
		JobsFinished: d.JobsFinished,
		Trigger:      d.Trigger.String(),
		Arrived:      d.ArrivedCount,
	}
}

// DecisionFromWire inverts DecisionToWire.
func DecisionFromWire(w wire.Decision) (planner.Decision, error) {
	tr, err := ParseTrigger(w.Trigger)
	if err != nil {
		return planner.Decision{}, err
	}
	old := w.OldMakespan
	if old == -1 {
		old = math.Inf(1)
	}
	return planner.Decision{
		Clock:        w.Clock,
		PoolSize:     w.PoolSize,
		OldMakespan:  old,
		NewMakespan:  w.NewMakespan,
		Adopted:      w.Adopted,
		JobsFinished: w.JobsFinished,
		Trigger:      tr,
		ArrivedCount: w.Arrived,
	}, nil
}

// ParseTrigger inverts planner.Trigger.String.
func ParseTrigger(s string) (planner.Trigger, error) {
	switch s {
	case "arrival":
		return planner.TriggerArrival, nil
	case "variance":
		return planner.TriggerVariance, nil
	case "departure":
		return planner.TriggerDeparture, nil
	case "contention":
		return planner.TriggerContention, nil
	case "upgrade":
		return planner.TriggerUpgrade, nil
	default:
		return 0, fmt.Errorf("feedback: unknown trigger %q", s)
	}
}
