package feedback

import (
	"sort"
	"testing"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/history"
	"aheft/internal/occupancy"
	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/schedule"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// newSharedTracker builds a tracker attached to the given ledger under
// the given owner id, planning the Fig. 4 sample over its pool.
func newSharedTracker(t *testing.T, l *occupancy.Ledger, owner string) (*Tracker, *workload.Scenario) {
	t.Helper()
	sc := workload.SampleScenario()
	tr, err := New(Config{
		Graph:     sc.Graph,
		Prior:     sc.Estimator(),
		Pool:      sc.Pool,
		History:   history.New(0),
		Policy:    policy.MustGet("aheft"),
		Occupancy: l.View(owner),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, sc
}

// overlap returns the total pairwise overlap between two workflows'
// schedules on shared resources.
func overlap(a, b *schedule.Schedule, g *dag.Graph) float64 {
	total := 0.0
	for _, ja := range g.Jobs() {
		aa := a.MustGet(ja.ID)
		for _, jb := range g.Jobs() {
			ab := b.MustGet(jb.ID)
			if aa.Resource != ab.Resource {
				continue
			}
			lo, hi := aa.Start, aa.Finish
			if ab.Start > lo {
				lo = ab.Start
			}
			if ab.Finish < hi {
				hi = ab.Finish
			}
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}

// TestSharedTrackersPlanAroundEachOther: the second workflow on a grid
// must plan into the capacity the first one left, with zero reserved
// overlap, and both plans publish their reservations.
func TestSharedTrackersPlanAroundEachOther(t *testing.T) {
	l := occupancy.NewLedger(4)
	trA, sc := newSharedTracker(t, l, "wf-a")
	if got := l.Count("wf-a"); got != sc.Graph.Len() {
		t.Fatalf("A published %d reservations, want %d", got, sc.Graph.Len())
	}
	trB, _ := newSharedTracker(t, l, "wf-b")
	if got := l.Count("wf-b"); got != sc.Graph.Len() {
		t.Fatalf("B published %d reservations, want %d", got, sc.Graph.Len())
	}
	if trB.ForeignReservations() != sc.Graph.Len() {
		t.Fatalf("B sees %d foreign reservations", trB.ForeignReservations())
	}
	if ov := overlap(trA.Plan(), trB.Plan(), sc.Graph); ov > 0 {
		t.Fatalf("reserved plans overlap by %g time units", ov)
	}
	// B's contended plan cannot beat A's uncontended one.
	if trB.InitialMakespan() < trA.InitialMakespan() {
		t.Fatalf("contended plan %g beats uncontended %g",
			trB.InitialMakespan(), trA.InitialMakespan())
	}
}

// TestContentionReevaluateAdoptsFreedCapacity: when the first workflow
// finishes and its reservations release, a contention reevaluation lets
// the survivor move onto the freed slots and adopt a strictly better
// plan.
func TestContentionReevaluateAdoptsFreedCapacity(t *testing.T) {
	l := occupancy.NewLedger(4)
	trA, sc := newSharedTracker(t, l, "wf-a")
	trB, _ := newSharedTracker(t, l, "wf-b")
	before := trB.Plan().Makespan()

	// A vanishes wholesale (terminal drain path): the shard releases its
	// reservations and pokes the survivor.
	_ = trA
	if n := l.Release("wf-a"); n != sc.Graph.Len() {
		t.Fatalf("released %d reservations, want %d", n, sc.Graph.Len())
	}
	out := trB.Reevaluate(planner.TriggerContention)
	if len(out.Decisions) != 1 {
		t.Fatalf("want one decision, got %+v", out)
	}
	d := out.Decisions[0]
	if d.Trigger != planner.TriggerContention {
		t.Fatalf("trigger = %v", d.Trigger)
	}
	if !out.Rescheduled || !d.Adopted {
		t.Fatalf("survivor did not adopt the freed capacity: %+v", d)
	}
	if trB.Plan().Makespan() >= before {
		t.Fatalf("adopted plan %g not better than contended %g", trB.Plan().Makespan(), before)
	}
	if trB.Generation() != 2 {
		t.Fatalf("generation = %d", trB.Generation())
	}
	// The survivor's new plan must equal the uncontended plan now that the
	// grid is empty again.
	if got, want := trB.Plan().Makespan(), trA.InitialMakespan(); got != want {
		t.Fatalf("freed plan %g, uncontended plan %g", got, want)
	}
	// Adoption republished: reservations reflect the new plan.
	if got := l.Count("wf-b"); got != sc.Graph.Len() {
		t.Fatalf("B holds %d reservations after adoption", got)
	}
}

// TestReservationsNarrowWithExecution: starts relocate claims to actual
// intervals, finishes release them, and completion leaves the ledger
// empty for the owner.
func TestReservationsNarrowWithExecution(t *testing.T) {
	l := occupancy.NewLedger(4)
	tr, sc := newSharedTracker(t, l, "wf-a")
	n := sc.Graph.Len()
	// Drive the plan faithfully: report every job's start and finish at
	// its scheduled interval, chronologically interleaved.
	events := make([]wire.ReportEvent, 0, 2*n)
	for _, a := range tr.Plan().Assignments() {
		events = append(events,
			wire.ReportEvent{Kind: wire.ReportJobStarted, Time: a.Start, Job: int(a.Job), Resource: int(a.Resource)},
			wire.ReportEvent{Kind: wire.ReportJobFinished, Time: a.Finish, Job: int(a.Job), Resource: int(a.Resource), Duration: a.Duration()},
		)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		// Starts before finishes at the same instant keeps a job that
		// begins when another ends valid either way.
		return events[i].Kind == wire.ReportJobStarted && events[j].Kind == wire.ReportJobFinished
	})
	reported := 0
	for _, ev := range events {
		out, err := tr.Apply([]wire.ReportEvent{ev})
		if err != nil {
			t.Fatalf("%s %d at %g: %v", ev.Kind, ev.Job, ev.Time, err)
		}
		if ev.Kind == wire.ReportJobFinished {
			reported++
			if out.Done && reported != n {
				t.Fatalf("done after %d of %d finishes", reported, n)
			}
			if want := n - reported; l.Count("wf-a") != want {
				t.Fatalf("after %d finishes: %d reservations, want %d", reported, l.Count("wf-a"), want)
			}
		}
	}
	if !tr.Done() {
		t.Fatal("tracker not done after every finish")
	}
	if got := l.Total(); got != 0 {
		t.Fatalf("completed run leaked %d reservations: %v", got, l.Owners())
	}
	// A done tracker's reevaluation is a no-op.
	if out := tr.Reevaluate(planner.TriggerContention); len(out.Decisions) != 0 {
		t.Fatalf("done tracker evaluated: %+v", out)
	}
}

// TestSharedWhatIfCountsForeign: the what-if answer reports the aggregate
// occupancy it planned against.
func TestSharedWhatIfCountsForeign(t *testing.T) {
	l := occupancy.NewLedger(4)
	newSharedTracker(t, l, "wf-a")
	trB, sc := newSharedTracker(t, l, "wf-b")
	doc, err := trB.WhatIf(wire.WhatIfRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.ForeignReservations != sc.Graph.Len() {
		t.Fatalf("what-if foreign reservations = %d, want %d", doc.ForeignReservations, sc.Graph.Len())
	}
	// Hypothetically adding the late resource must still answer against
	// the occupied grid, not a private snapshot: the projected new
	// makespan stays >= the uncontended initial plan.
	doc2, err := trB.WhatIf(wire.WhatIfRequest{Add: []int{int(grid.ID(3))}})
	if err != nil {
		t.Fatal(err)
	}
	if doc2.PoolSize != len(sc.Pool.Initial())+1 {
		t.Fatalf("pool size = %d", doc2.PoolSize)
	}
}
