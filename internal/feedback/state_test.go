package feedback

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"aheft/internal/grid"
	"aheft/internal/history"
	"aheft/internal/occupancy"
	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// mustJSON marshals v for byte-level comparison of exported states.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// cloneRepo rebuilds a repository the way the daemon's recovery does:
// import the snapshot cells into a fresh store.
func cloneRepo(src *history.Repository) *history.Repository {
	dst := history.New(src.Alpha())
	dst.Import(src.Export())
	return dst
}

// sampleBatches drives the Fig. 4 sample workflow partway: jobs 0..3
// finish with drifted runtimes (variance against accruing history), r4
// joins mid-run, job 4 starts and reports a variance pin. The batches
// exercise every journalled dimension: phases, measured runtimes,
// availability, pins, decisions, adoptions and the transfer ledger.
func sampleBatches() [][]wire.ReportEvent {
	return [][]wire.ReportEvent{
		{
			{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 0},
			{Kind: wire.ReportJobFinished, Time: 11, Job: 0, Resource: 0, Duration: 11},
		},
		{
			{Kind: wire.ReportJobStarted, Time: 12, Job: 1, Resource: 1},
			{Kind: wire.ReportJobStarted, Time: 13, Job: 2, Resource: 0},
			{Kind: wire.ReportJobFinished, Time: 26, Job: 1, Resource: 1, Duration: 14},
			{Kind: wire.ReportJobFinished, Time: 29, Job: 2, Resource: 0, Duration: 16},
		},
		{
			{Kind: wire.ReportResourceJoin, Time: 30, Resource: 3},
			{Kind: wire.ReportJobStarted, Time: 31, Job: 3, Resource: 2},
			{Kind: wire.ReportJobFinished, Time: 45, Job: 3, Resource: 2, Duration: 14},
		},
		{
			{Kind: wire.ReportJobStarted, Time: 46, Job: 4, Resource: 1},
			{Kind: wire.ReportVariance, Time: 50, Job: 4, Duration: 21},
		},
	}
}

// restoreClone journals tr the way the daemon would — export state,
// clone the tenant repository — and restores into an equivalent config.
func restoreClone(t *testing.T, tr *Tracker, sc *workload.Scenario, occ *occupancy.View) (*Tracker, *history.Repository) {
	t.Helper()
	st := tr.ExportState()
	// Round-trip through JSON: the state crosses a WAL/snapshot boundary
	// in production, so the serialised form must carry everything.
	var rt TrackerState
	if err := json.Unmarshal(mustJSON(t, st), &rt); err != nil {
		t.Fatal(err)
	}
	repo := cloneRepo(tr.repo)
	got, err := Restore(Config{
		Graph:     sc.Graph,
		Prior:     sc.Estimator(),
		Pool:      sc.Pool,
		History:   repo,
		Policy:    policy.MustGet("aheft"),
		Occupancy: occ,
	}, &rt)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return got, repo
}

// scrubTelemetry copies a decision log with the process-local telemetry
// fields (replan path, cone, wall time) zeroed: the kernel's delta memo
// does not survive a restart, so a recovered run may legitimately replan
// fully where the original took the delta path — the schedules are
// bit-identical either way, and only the semantic fields are part of the
// recovery identity.
func scrubTelemetry(ds []planner.Decision) []planner.Decision {
	out := make([]planner.Decision, len(ds))
	for i, d := range ds {
		d.Path, d.ConeSize, d.FallbackReason, d.ElapsedMs = "", 0, "", 0
		d.RankMs, d.PlaceMs = 0, 0
		out[i] = d
	}
	return out
}

// TestExportRestoreIdentity is the core recovery property: after any
// prefix of a live run, export → restore → export is the identity at
// the byte level, and the restored tracker is behaviourally equivalent —
// identical subsequent batches produce identical outcomes, decisions,
// plans and final states.
func TestExportRestoreIdentity(t *testing.T) {
	batches := sampleBatches()
	for cut := 0; cut <= len(batches); cut++ {
		orig, sc := newSampleTracker(t, policy.Options{TieWindow: 0.05})
		for _, b := range batches[:cut] {
			if _, err := orig.Apply(b); err != nil {
				t.Fatalf("cut %d: apply: %v", cut, err)
			}
		}
		rest, _ := restoreClone(t, orig, sc, nil)

		a, b := mustJSON(t, orig.ExportState()), mustJSON(t, rest.ExportState())
		if string(a) != string(b) {
			t.Fatalf("cut %d: restored state differs\n orig: %s\n rest: %s", cut, a, b)
		}
		if orig.Generation() != rest.Generation() || orig.Adoptions() != rest.Adoptions() {
			t.Fatalf("cut %d: generation/adoptions diverge", cut)
		}
		if !reflect.DeepEqual(scrubTelemetry(orig.Decisions()), scrubTelemetry(rest.Decisions())) {
			t.Fatalf("cut %d: decision logs diverge", cut)
		}

		// Behavioural equivalence: feed both the remaining batches and
		// compare outcomes step by step, then final exported states.
		for bi, batch := range batches[cut:] {
			o1, e1 := orig.Apply(batch)
			o2, e2 := rest.Apply(batch)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("cut %d batch %d: errors diverge: %v vs %v", cut, bi, e1, e2)
			}
			if e1 != nil {
				continue
			}
			if string(mustJSON(t, o1)) != string(mustJSON(t, o2)) {
				t.Fatalf("cut %d batch %d: outcomes diverge", cut, bi)
			}
		}
		fa, fb := mustJSON(t, orig.ExportState()), mustJSON(t, rest.ExportState())
		if string(fa) != string(fb) {
			t.Fatalf("cut %d: post-replay states diverge\n orig: %s\n rest: %s", cut, fa, fb)
		}
	}
}

// TestHistoryDeltaReplay pins the repository recovery arithmetic down:
// snapshot cells + the Recorded deltas of later batches, replayed in
// order, reproduce the never-crashed repository bit for bit.
func TestHistoryDeltaReplay(t *testing.T) {
	batches := sampleBatches()
	orig, _ := newSampleTracker(t, policy.Options{})
	// "Snapshot" after the first batch...
	if _, err := orig.Apply(batches[0]); err != nil {
		t.Fatal(err)
	}
	recovered := cloneRepo(orig.repo)
	// ...then journal the deltas of every later batch.
	var deltas []HistoryDelta
	for _, b := range batches[1:] {
		out, err := orig.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, out.Recorded...)
	}
	for _, d := range deltas {
		if err := recovered.Record(d.Op, grid.ID(d.Resource), d.Duration); err != nil {
			t.Fatalf("replay delta %+v: %v", d, err)
		}
	}
	a, b := mustJSON(t, orig.repo.Export()), mustJSON(t, recovered.Export())
	if string(a) != string(b) {
		t.Fatalf("replayed repository differs\n orig: %s\n rest: %s", a, b)
	}
}

// TestSharedGridLedgerReconstruction restores two residents of one grid
// into a fresh ledger and requires the reassembled reservation set to be
// bit-identical to the live one.
func TestSharedGridLedgerReconstruction(t *testing.T) {
	live := occupancy.NewLedger(4)
	a, sca := newSharedTracker(t, live, "wf-a")
	b, _ := newSharedTracker(t, live, "wf-b")
	if _, err := a.Apply(sampleBatches()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Apply([]wire.ReportEvent{
		{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 1},
	}); err != nil {
		t.Fatal(err)
	}

	fresh := occupancy.NewLedger(4)
	ra, _ := restoreClone(t, a, sca, fresh.View("wf-a"))
	rb, _ := restoreClone(t, b, sca, fresh.View("wf-b"))
	if ra == nil || rb == nil {
		t.Fatal("restore returned nil tracker")
	}
	la, lb := mustJSON(t, live.Export()), mustJSON(t, fresh.Export())
	if string(la) != string(lb) {
		t.Fatalf("reassembled ledger differs\n live: %s\n rest: %s", la, lb)
	}
	if live.Total() != fresh.Total() || fresh.Total() == 0 {
		t.Fatalf("totals: live %d, fresh %d", live.Total(), fresh.Total())
	}
	// The restored residents still see each other: releasing one must
	// leave only the other's entries.
	if n := fresh.Release("wf-a"); n == 0 {
		t.Fatal("wf-a held no reservations after restore")
	}
	for _, o := range fresh.Export() {
		if o.Owner != "wf-b" {
			t.Fatalf("stray reservation %+v after release", o)
		}
	}
}

// TestAlreadyApplied covers the idempotent-ack predicate: exact replays
// of folded batches are recognised, novel or inconsistent batches are
// not.
func TestAlreadyApplied(t *testing.T) {
	batches := sampleBatches()
	tr, _ := newSampleTracker(t, policy.Options{})
	if tr.AlreadyApplied(nil) || tr.AlreadyApplied(batches[0]) {
		t.Fatal("fresh tracker claims batches already applied")
	}
	for i, b := range batches {
		if _, err := tr.Apply(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for j := 0; j <= i; j++ {
			if !tr.AlreadyApplied(batches[j]) {
				t.Fatalf("replay of batch %d not recognised after batch %d", j, i)
			}
		}
		for j := i + 1; j < len(batches); j++ {
			if tr.AlreadyApplied(batches[j]) {
				t.Fatalf("future batch %d claimed applied after batch %d", j, i)
			}
		}
	}
	// Same shape, wrong facts: a finished job at a different time, a
	// started job on a different resource, an available resource joining.
	for _, evs := range [][]wire.ReportEvent{
		{{Kind: wire.ReportJobFinished, Time: 12, Job: 0}},
		{{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 2}},
		{{Kind: wire.ReportResourceLeave, Time: 1, Resource: 2}},
		{{Kind: wire.ReportVariance, Time: 2, Job: 7}},
	} {
		if tr.AlreadyApplied(evs) {
			t.Fatalf("inconsistent batch %+v claimed applied", evs)
		}
	}
}

// TestRestoreRejectsCorruptState enumerates the failure modes a mangled
// journal can produce: every one must surface as an error, never a
// panic, and never a half-built tracker.
func TestRestoreRejectsCorruptState(t *testing.T) {
	orig, sc := newSampleTracker(t, policy.Options{})
	if _, err := orig.Apply(sampleBatches()[0]); err != nil {
		t.Fatal(err)
	}
	base := orig.ExportState()
	cfg := Config{
		Graph:   sc.Graph,
		Prior:   sc.Estimator(),
		Pool:    sc.Pool,
		History: cloneRepo(orig.repo),
		Policy:  policy.MustGet("aheft"),
	}
	mutations := map[string]func(st *TrackerState){
		"nil-everything":    func(st *TrackerState) { *st = TrackerState{} },
		"zero-generation":   func(st *TrackerState) { st.Generation = 0 },
		"short-phase":       func(st *TrackerState) { st.Phase = st.Phase[:1] },
		"short-avail":       func(st *TrackerState) { st.Avail = st.Avail[:1] },
		"missing-job":       func(st *TrackerState) { st.Assignments = st.Assignments[1:] },
		"duplicate-job":     func(st *TrackerState) { st.Assignments[1] = st.Assignments[0] },
		"bad-resource":      func(st *TrackerState) { st.Assignments[0].Resource = 99 },
		"inverted-interval": func(st *TrackerState) { st.Assignments[0].Start = st.Assignments[0].Finish + 1 },
		"nan-clock":         func(st *TrackerState) { st.Clock = math.NaN() },
		"bad-phase":         func(st *TrackerState) { st.Phase[0] = 9 },
		"bad-start-res":     func(st *TrackerState) { st.Phase[0] = 1; st.StartRes[0] = -1 },
		"bad-transfer":      func(st *TrackerState) { st.Transfers = []TransferState{{From: -1, To: 0}} },
		"bad-trigger": func(st *TrackerState) {
			st.Decisions = []wire.Decision{{Trigger: "eclipse"}}
		},
	}
	for name, mutate := range mutations {
		var st TrackerState
		if err := json.Unmarshal(mustJSON(t, base), &st); err != nil {
			t.Fatal(err)
		}
		mutate(&st)
		if _, err := Restore(cfg, &st); err == nil {
			t.Fatalf("%s: corrupt state restored without error", name)
		}
	}
	if _, err := Restore(cfg, nil); err == nil {
		t.Fatal("nil state restored without error")
	}
}

// TestDecisionWireRoundTrip covers the +Inf sentinel and trigger names.
func TestDecisionWireRoundTrip(t *testing.T) {
	for _, d := range []planner.Decision{
		{Clock: 1, PoolSize: 3, OldMakespan: 80, NewMakespan: 76, Adopted: true, Trigger: planner.TriggerArrival, ArrivedCount: 1},
		{Clock: 2, PoolSize: 2, OldMakespan: math.Inf(1), NewMakespan: 90, Adopted: true, Trigger: planner.TriggerDeparture},
		{Clock: 3, PoolSize: 4, OldMakespan: 50, NewMakespan: 55, Trigger: planner.TriggerVariance, JobsFinished: 2},
		{Clock: 4, PoolSize: 4, OldMakespan: 60, NewMakespan: 58, Trigger: planner.TriggerContention},
	} {
		got, err := DecisionFromWire(DecisionToWire(d))
		if err != nil {
			t.Fatalf("%+v: %v", d, err)
		}
		if !reflect.DeepEqual(got, d) {
			t.Fatalf("round trip %+v -> %+v", d, got)
		}
	}
	if _, err := ParseTrigger("eclipse"); err == nil {
		t.Fatal("bogus trigger parsed")
	}
}
