package feedback

import (
	"testing"

	"aheft/internal/history"
	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/workload"
)

// TestFastPlanUpgrade: the two-speed admission path end to end at the
// tracker level. A tracker built with the greedy FastPlan starts from
// the cheap list-order placement; Reevaluate(TriggerUpgrade) runs the
// full policy pass and adopts on improvement, bumping the generation —
// and a second upgrade finds nothing left to improve.
func TestFastPlanUpgrade(t *testing.T) {
	sc := workload.SampleScenario()
	fast, err := New(Config{
		Graph:    sc.Graph,
		Prior:    sc.Estimator(),
		Pool:     sc.Pool,
		History:  history.New(0),
		Policy:   policy.MustGet("aheft"),
		FastPlan: policy.MustGet("greedy"),
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(Config{
		Graph:   sc.Graph,
		Prior:   sc.Estimator(),
		Pool:    sc.Pool,
		History: history.New(0),
		Policy:  policy.MustGet("aheft"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Generation() != 1 {
		t.Fatalf("fast tracker starts at generation %d", fast.Generation())
	}
	greedyMk := fast.Plan().Makespan()
	heftMk := full.Plan().Makespan()
	if greedyMk < heftMk {
		t.Fatalf("greedy initial plan (%g) beats full HEFT (%g) — scenario no longer exercises the upgrade", greedyMk, heftMk)
	}

	out := fast.Reevaluate(planner.TriggerUpgrade)
	if len(out.Decisions) != 1 {
		t.Fatalf("upgrade recorded %d decisions, want 1", len(out.Decisions))
	}
	d := out.Decisions[0]
	if d.Trigger != planner.TriggerUpgrade {
		t.Fatalf("decision trigger = %v", d.Trigger)
	}
	if d.Path == "delta" {
		t.Fatal("upgrade took the incremental delta path; it must run the full pass")
	}
	if greedyMk > heftMk {
		if !out.Rescheduled || !d.Adopted {
			t.Fatalf("upgrade not adopted (greedy %g vs heft %g): %+v", greedyMk, heftMk, d)
		}
		if fast.Generation() != 2 {
			t.Fatalf("generation after upgrade = %d, want 2", fast.Generation())
		}
		if got := fast.Plan().Makespan(); got != heftMk {
			t.Fatalf("upgraded makespan %g, want full-HEFT %g", got, heftMk)
		}
	}

	again := fast.Reevaluate(planner.TriggerUpgrade)
	if again.Rescheduled {
		t.Fatal("second upgrade adopted a plan; the first should have converged")
	}
}

// TestFastPlanRejectsJustInTime: a just-in-time dispatch simulation
// cannot serve as the fast plan — its "schedule" is not enactable.
func TestFastPlanRejectsJustInTime(t *testing.T) {
	sc := workload.SampleScenario()
	_, err := New(Config{
		Graph:    sc.Graph,
		Prior:    sc.Estimator(),
		Pool:     sc.Pool,
		History:  history.New(0),
		Policy:   policy.MustGet("aheft"),
		FastPlan: policy.MustGet("minmin"),
	})
	if err == nil {
		t.Fatal("just-in-time fast plan accepted")
	}
}

// TestParseTriggerUpgrade: the wire round trip covers the new trigger.
func TestParseTriggerUpgrade(t *testing.T) {
	tr, err := ParseTrigger("upgrade")
	if err != nil || tr != planner.TriggerUpgrade {
		t.Fatalf("ParseTrigger(upgrade) = (%v, %v)", tr, err)
	}
	if s := planner.TriggerUpgrade.String(); s != "upgrade" {
		t.Fatalf("TriggerUpgrade.String() = %q", s)
	}
}
