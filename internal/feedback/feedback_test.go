package feedback

import (
	"math"
	"sort"
	"strings"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/history"
	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/sim"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

func newSampleTracker(t *testing.T, opts policy.Options) (*Tracker, *workload.Scenario) {
	t.Helper()
	sc := workload.SampleScenario()
	tr, err := New(Config{
		Graph:   sc.Graph,
		Prior:   sc.Estimator(),
		Pool:    sc.Pool,
		History: history.New(0),
		Policy:  policy.MustGet("aheft"),
		Opts:    opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, sc
}

// enact drives the tracker's plan through the real discrete-event
// executor, reporting job starts, measured finishes and resource
// arrivals back into the tracker and resubmitting adopted plans — the
// whole Fig. 1 loop in-process.
func enact(t *testing.T, tr *Tracker, g *dag.Graph, rt executor.Runtime, pool *grid.Pool) float64 {
	t.Helper()
	var eng *executor.Engine
	var pending []wire.ReportEvent
	flush := func() {
		if len(pending) == 0 {
			return
		}
		out, err := tr.Apply(pending)
		pending = pending[:0]
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if out.Rescheduled {
			if err := eng.Resubmit(tr.Plan()); err != nil {
				t.Fatalf("resubmit: %v", err)
			}
		}
	}
	handler := executor.EventHandlerFunc(func(ev executor.Event) {
		switch {
		case ev.Finished != dag.NoJob:
			pending = append(pending, wire.ReportEvent{
				Kind: wire.ReportJobFinished, Time: ev.Time,
				Job: int(ev.Finished), Resource: int(ev.OnResource), Duration: ev.ActualDuration,
			})
		default:
			for _, r := range ev.Arrived {
				pending = append(pending, wire.ReportEvent{
					Kind: wire.ReportResourceJoin, Time: ev.Time, Resource: int(r.ID),
				})
			}
		}
		flush()
	})
	var err error
	eng, err = executor.New(sim.New(), g, rt, pool, tr.Plan(), handler)
	if err != nil {
		t.Fatal(err)
	}
	eng.StartHook = func(j dag.JobID, r grid.ID, at float64) {
		pending = append(pending, wire.ReportEvent{
			Kind: wire.ReportJobStarted, Time: at, Job: int(j), Resource: int(r),
		})
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng.Makespan()
}

// TestSampleClosedLoopAdoptsArrival reproduces the paper's Fig. 4/5
// worked example through the feedback loop: the r4 arrival at t=15,
// reported by the enactor rather than read from an arrival trace, must
// trigger an adopted reschedule that lands the measured makespan at 76
// (initial static plan: 80).
func TestSampleClosedLoopAdoptsArrival(t *testing.T) {
	tr, sc := newSampleTracker(t, policy.Options{TieWindow: 0.05})
	if tr.InitialMakespan() != 80 {
		t.Fatalf("initial makespan %g, want 80", tr.InitialMakespan())
	}
	mk := enact(t, tr, sc.Graph, sc.Estimator(), sc.Pool)
	if !tr.Done() || mk != 76 || tr.Makespan() != 76 {
		t.Fatalf("done=%v makespan=%g tracker=%g, want 76", tr.Done(), mk, tr.Makespan())
	}
	if tr.Adoptions() == 0 || tr.Generation() < 2 {
		t.Fatalf("no adoption: gen=%d decisions=%+v", tr.Generation(), tr.Decisions())
	}
	for _, d := range tr.Decisions() {
		if d.Trigger != planner.TriggerArrival {
			t.Fatalf("unexpected trigger %s", d.Trigger)
		}
	}
}

// varianceScenario builds a workflow whose parallel jobs share one
// operation, so repeated executions populate the history and a slow
// outlier registers as significant variance.
func varianceScenario() (*dag.Graph, *cost.Table, *grid.Pool) {
	g := dag.New("variance")
	seed := g.AddJob("seed", "seed")
	var work []dag.JobID
	for i := 0; i < 4; i++ {
		j := g.AddJob("work"+string(rune('0'+i)), "work")
		g.AddEdge(seed, j, 1)
		work = append(work, j)
	}
	exit := g.AddJob("exit", "exit")
	for _, j := range work {
		g.AddEdge(j, exit, 1)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	rows := make([][]float64, g.Len())
	for i := range rows {
		rows[i] = []float64{10, 10}
	}
	return g, cost.MustTable(rows), grid.StaticPool(2)
}

func TestVarianceTriggersReschedule(t *testing.T) {
	g, table, pool := varianceScenario()
	tr, err := New(Config{
		Graph: g, Prior: cost.Exact(table), Pool: pool,
		History: history.New(0), Policy: policy.MustGet("aheft"),
		VarianceThreshold: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	apply := func(evs ...wire.ReportEvent) *Outcome {
		t.Helper()
		out, err := tr.Apply(evs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	apply(wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 0})
	apply(wire.ReportEvent{Kind: wire.ReportJobFinished, Time: 10, Job: 0, Duration: 10})
	// Two "work" executions on r0 at the nominal runtime build history…
	apply(wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 10, Job: 1, Resource: 0})
	apply(wire.ReportEvent{Kind: wire.ReportJobFinished, Time: 20, Job: 1, Duration: 10})
	apply(wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 20, Job: 2, Resource: 0})
	out := apply(wire.ReportEvent{Kind: wire.ReportJobFinished, Time: 30, Job: 2, Duration: 10})
	if len(out.Decisions) != 0 {
		t.Fatalf("nominal runtime triggered an evaluation: %+v", out.Decisions)
	}
	// …then a 2× outlier on the same (op, resource) cell must trigger.
	apply(wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 30, Job: 3, Resource: 0})
	out = apply(wire.ReportEvent{Kind: wire.ReportJobFinished, Time: 50, Job: 3, Duration: 20})
	if len(out.Decisions) != 1 || out.Decisions[0].Trigger != planner.TriggerVariance {
		t.Fatalf("outlier decisions: %+v", out.Decisions)
	}
	// An explicit variance event on a running job also triggers, and the
	// revised duration moves the pinned finish.
	apply(wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 50, Job: 4, Resource: 1})
	out = apply(wire.ReportEvent{Kind: wire.ReportVariance, Time: 55, Job: 4, Duration: 40})
	if len(out.Decisions) != 1 || out.Decisions[0].Trigger != planner.TriggerVariance {
		t.Fatalf("explicit variance decisions: %+v", out.Decisions)
	}
}

func TestDepartureForcesAdoption(t *testing.T) {
	tr, _ := newSampleTracker(t, policy.Options{})
	// Which resource does the initial plan lean on? Remove one that holds
	// pending work so the plan goes infeasible.
	victim := tr.Plan().Resources()[0]
	out, err := tr.Apply([]wire.ReportEvent{
		{Kind: wire.ReportResourceLeave, Time: 1, Resource: int(victim)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Decisions) != 1 {
		t.Fatalf("decisions: %+v", out.Decisions)
	}
	d := out.Decisions[0]
	if d.Trigger != planner.TriggerDeparture || !d.Adopted || !math.IsInf(d.OldMakespan, 1) {
		t.Fatalf("departure decision: %+v", d)
	}
	for _, a := range tr.Plan().Assignments() {
		if a.Resource == victim {
			t.Fatalf("replanned schedule still uses departed resource %d: %+v", victim, a)
		}
	}
}

func TestWhatIfLiveSnapshot(t *testing.T) {
	tr, _ := newSampleTracker(t, policy.Options{TieWindow: 0.05})
	// Replay the initial plan's faithful execution up to t=15 — the
	// moment the Fig. 4 pool's fourth resource would join — then ask the
	// §3.3 question: what if it joined right now? The answer must be the
	// paper's adopted reschedule: 80 → 76.
	var evs []wire.ReportEvent
	for _, a := range tr.Plan().Assignments() {
		if a.Start < 15 {
			evs = append(evs, wire.ReportEvent{
				Kind: wire.ReportJobStarted, Time: a.Start, Job: int(a.Job), Resource: int(a.Resource),
			})
		}
		if a.Finish <= 15 {
			evs = append(evs, wire.ReportEvent{
				Kind: wire.ReportJobFinished, Time: a.Finish, Job: int(a.Job), Duration: a.Finish - a.Start,
			})
		}
	}
	sortEvents(evs)
	if _, err := tr.Apply(evs); err != nil {
		t.Fatal(err)
	}
	doc, err := tr.WhatIf(wire.WhatIfRequest{Clock: 15, Add: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Clock != 15 || doc.PoolSize != 4 || doc.CurrentMakespan != 80 || doc.NewMakespan != 76 {
		t.Fatalf("what-if: %+v", doc)
	}
	if !doc.WouldAdopt || doc.Delta != -4 {
		t.Fatalf("what-if verdict: %+v", doc)
	}
	// The tentative evaluation must not disturb the live plan.
	if tr.Generation() != 1 || tr.Plan().Makespan() != 80 {
		t.Fatalf("what-if mutated the live plan: gen=%d mk=%g", tr.Generation(), tr.Plan().Makespan())
	}
	if _, err := tr.WhatIf(wire.WhatIfRequest{Add: []int{99}}); err == nil {
		t.Fatal("out-of-universe add accepted")
	}
	if _, err := tr.WhatIf(wire.WhatIfRequest{Remove: []int{0, 1, 2}}); err == nil {
		t.Fatal("empty hypothetical pool accepted")
	}
}

// sortEvents time-orders a replayed batch, keeping starts ahead of the
// finishes that share their timestamp.
func sortEvents(evs []wire.ReportEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		return evs[i].Kind == wire.ReportJobStarted && evs[j].Kind != wire.ReportJobStarted
	})
}

func TestApplyRejectionsAreAtomic(t *testing.T) {
	tr, _ := newSampleTracker(t, policy.Options{})
	cases := []struct {
		name string
		evs  []wire.ReportEvent
		want string
	}{
		{"job out of range", []wire.ReportEvent{
			{Kind: wire.ReportJobStarted, Time: 0, Job: 10, Resource: 0},
		}, "out of range"},
		{"finish before start", []wire.ReportEvent{
			{Kind: wire.ReportJobFinished, Time: 5, Job: 0, Duration: 5},
		}, "before it started"},
		{"double start", []wire.ReportEvent{
			{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 0},
			{Kind: wire.ReportJobStarted, Time: 1, Job: 0, Resource: 1},
		}, "twice"},
		{"start on unavailable resource", []wire.ReportEvent{
			{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 3},
		}, "unavailable resource"},
		{"join available resource", []wire.ReportEvent{
			{Kind: wire.ReportResourceJoin, Time: 0, Resource: 0},
		}, "already available"},
		{"leave absent resource", []wire.ReportEvent{
			{Kind: wire.ReportResourceLeave, Time: 0, Resource: 3},
		}, "not available"},
		{"variance on idle job", []wire.ReportEvent{
			{Kind: wire.ReportVariance, Time: 0, Job: 0},
		}, "not running"},
		{"resource out of range", []wire.ReportEvent{
			{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 9},
		}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tr.Apply(tc.evs)
			if err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// A batch whose *second* event is bad must leave the run untouched —
	// the valid first event must still be applicable afterwards.
	_, err := tr.Apply([]wire.ReportEvent{
		{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 0},
		{Kind: wire.ReportJobFinished, Time: 4, Job: 5, Duration: 4},
	})
	if err == nil || !strings.Contains(err.Error(), "before it started") {
		t.Fatalf("mixed batch: %v", err)
	}
	if out, err := tr.Apply([]wire.ReportEvent{
		{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 0},
	}); err != nil || out.Applied != 1 {
		t.Fatalf("state was mutated by the rejected batch: %v %+v", err, out)
	}
	// Non-monotonic across reports: the run clock is now 0; an earlier
	// time must bounce.
	_, err = tr.Apply([]wire.ReportEvent{
		{Kind: wire.ReportJobFinished, Time: 0, Job: 0, Duration: 1},
		{Kind: wire.ReportJobStarted, Time: 0, Job: 1, Resource: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.Apply([]wire.ReportEvent{
		{Kind: wire.ReportVariance, Time: -1, Job: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "non-monotonic") {
		t.Fatalf("non-monotonic report: %v", err)
	}
}

func TestCompletionAndPostDoneApply(t *testing.T) {
	g, table, pool := varianceScenario()
	tr, err := New(Config{
		Graph: g, Prior: cost.Exact(table), Pool: pool,
		History: history.New(0), Policy: policy.MustGet("aheft"),
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := 0.0
	for j := 0; j < g.Len(); j++ {
		out, err := tr.Apply([]wire.ReportEvent{
			{Kind: wire.ReportJobStarted, Time: clock, Job: j, Resource: 0},
			{Kind: wire.ReportJobFinished, Time: clock + 10, Job: j, Duration: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		clock += 10
		if j == g.Len()-1 {
			if !out.Done || out.Makespan != clock {
				t.Fatalf("final report: %+v (clock %g)", out, clock)
			}
		}
	}
	if !tr.Done() || tr.Makespan() != clock {
		t.Fatalf("done=%v makespan=%g", tr.Done(), tr.Makespan())
	}
	if _, err := tr.Apply([]wire.ReportEvent{
		{Kind: wire.ReportResourceJoin, Time: clock, Resource: 1},
	}); err == nil {
		t.Fatal("post-completion report accepted")
	}
	if _, err := tr.WhatIf(wire.WhatIfRequest{Add: []int{1}}); err == nil {
		t.Fatal("post-completion what-if accepted")
	}
}

// TestProjectionTracksDrift: when every job runs 50% slow, the projected
// completion of the current plan must exceed its nominal makespan — the
// honest S0 the adoption comparison needs.
func TestProjectionTracksDrift(t *testing.T) {
	g, table, pool := varianceScenario()
	tr, err := New(Config{
		Graph: g, Prior: cost.Exact(table), Pool: pool,
		History: history.New(0), Policy: policy.MustGet("aheft"),
	})
	if err != nil {
		t.Fatal(err)
	}
	nominal := tr.Plan().Makespan()
	if p := tr.Project(); p != nominal {
		t.Fatalf("cold projection %g, want nominal %g", p, nominal)
	}
	// Seed finishes 50% slow; history now predicts 15 for "seed" but the
	// pending "work" ops are unobserved, so only the measured drift and
	// the later start move the projection.
	if _, err := tr.Apply([]wire.ReportEvent{
		{Kind: wire.ReportJobStarted, Time: 0, Job: 0, Resource: 0},
		{Kind: wire.ReportJobFinished, Time: 15, Job: 0, Duration: 15},
	}); err != nil {
		t.Fatal(err)
	}
	if p := tr.Project(); p <= nominal {
		t.Fatalf("projection %g did not track the 50%% drift past %g", p, nominal)
	}
}
