// Package core implements AHEFT, the paper's primary contribution: an
// HEFT-based adaptive rescheduling algorithm in which the workflow Planner
// reacts to run-time events (chiefly resource arrivals) by rescheduling the
// jobs that have not yet finished, adopting the new schedule only when it
// improves the predicted makespan.
//
// The package follows the paper's formalisation directly:
//
//   - ExecState is the execution-status snapshot of the current schedule S0
//     at the logical time `clock` of rescheduling.
//   - FEA (Eq. 1) gives the earliest time a predecessor's output file is
//     available on a candidate resource, with its four cases: already on
//     the resource; finished elsewhere and needing a fresh transfer that
//     cannot start before clock; being produced on that same resource in
//     the new schedule; or being produced elsewhere in the new schedule.
//   - EST/EFT (Eqs. 2–3) fold FEA with resource availability.
//   - Reschedule is procedure schedule(S0, P, H) of Fig. 3: upward ranks
//     over the unfinished jobs, then EFT-minimising placement.
//
// The rank/FEA/placement machinery itself lives in the shared scheduling
// kernel (internal/kernel); this package owns the execution-state model
// (ExecState, Snapshot) and exposes Reschedule as the stable one-shot
// entry point, converting the map-based snapshot into the kernel's dense
// state. Engine code that reschedules repeatedly (internal/planner) holds
// a kernel and a dense state directly and skips the conversion. FEA here
// is the map-based reference implementation of Eq. 1 that the property
// suites cross-check the kernel against.
//
// When clock == 0 and no job has run, Reschedule degenerates to classic
// HEFT exactly, as §3.4 requires ("AHEFT is identical to HEFT when
// clock = 0").
package core

import (
	"fmt"
	"sort"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
)

// FinishedJob records the actual outcome of a job that completed before the
// rescheduling clock: where it ran and its actual finish time AFT.
type FinishedJob struct {
	Resource grid.ID
	AST      float64 // actual start time
	AFT      float64 // actual finish time
}

// EdgeKey identifies the data file one job ships to one successor. The
// paper's data matrix is per job pair (data_{i,k}), so file availability
// is tracked per edge: the blocks a FileBreaker hands its k successors
// are k different files.
type EdgeKey struct {
	From, To dag.JobID
}

// ExecState is the snapshot of a partially executed workflow at the moment
// the Planner reschedules. It is derived from the current schedule S0 plus
// the execution history up to Clock.
type ExecState struct {
	// Clock is the logical time of rescheduling.
	Clock float64
	// Finished maps every completed job to its actual outcome. A finished
	// job's outputs are always available on its own resource from AFT
	// onward (Eq. 1 Case 1).
	Finished map[dag.JobID]FinishedJob
	// TransferAt[{m,k}][r] is the earliest time the (m → k) file is (or
	// will be, for an in-flight transfer) available on resource r, over
	// the transfers the executed prefix of S0 already initiated under the
	// static ship-on-finish policy. Eq. 1's "scheduled to transfer"
	// condition reads this; absence forces Case 2, a fresh transfer that
	// cannot start before Clock.
	TransferAt map[EdgeKey]map[grid.ID]float64
	// Pinned holds jobs that are mid-execution at Clock and keep their
	// current assignment (the default; validated by the Fig. 5 worked
	// example, where the running n3 keeps its slot). Under the
	// RestartRunning ablation the map is empty and running jobs are
	// rescheduled like unstarted ones, losing their partial work.
	Pinned map[dag.JobID]schedule.Assignment
}

// NewExecState returns an empty snapshot at clock 0 — the state for an
// initial scheduling round, under which Reschedule is exactly HEFT.
func NewExecState() *ExecState {
	return &ExecState{
		Finished:   make(map[dag.JobID]FinishedJob),
		TransferAt: make(map[EdgeKey]map[grid.ID]float64),
		Pinned:     make(map[dag.JobID]schedule.Assignment),
	}
}

// SetTransfer records that the (m → k) file is available on r at time t,
// keeping the earliest time if called twice.
func (st *ExecState) SetTransfer(m, k dag.JobID, r grid.ID, t float64) {
	key := EdgeKey{From: m, To: k}
	row := st.TransferAt[key]
	if row == nil {
		row = make(map[grid.ID]float64)
		st.TransferAt[key] = row
	}
	if old, ok := row[r]; !ok || t < old {
		row[r] = t
	}
}

// TransferCredit selects which previously initiated file transfers a
// reschedule may count on (the OutputAt entries Snapshot records). It is
// the kernel's type; the Credit* constants are re-exported here for the
// v1 signatures.
type TransferCredit = kernel.TransferCredit

const (
	// CreditAll credits completed and in-flight transfers: a file already
	// moving toward a resource arrives there at its original ETA even if
	// the consumer is rescheduled elsewhere.
	CreditAll = kernel.CreditAll
	// CreditDelivered credits only transfers that completed by clock;
	// in-flight transfers are treated as cancelled by the reschedule.
	CreditDelivered = kernel.CreditDelivered
	// CreditNone credits nothing beyond the producer's own resource:
	// every cross-resource read pays a fresh transfer from clock.
	CreditNone = kernel.CreditNone
)

// SnapshotOptions controls how Snapshot derives an ExecState from a
// schedule (an alias of the kernel's option type).
type SnapshotOptions = kernel.SnapshotOptions

// Snapshot derives the execution state of schedule s0 executed faithfully
// (accurate estimates: actual times equal scheduled times) up to clock.
// The static file-transfer policy is applied: when a job finishes, its
// output is immediately shipped to the resource of every scheduled
// successor (paper §4.1 assumption 2).
//
// This is the map-based form consumed by inspection code and the what-if
// API; kernel.State.Snapshot is its dense equivalent on the hot path, and
// the property suites hold the two to identical reschedules.
func Snapshot(g *dag.Graph, est cost.Estimator, s0 *schedule.Schedule, clock float64, opts SnapshotOptions) *ExecState {
	st := NewExecState()
	st.Clock = clock
	if s0 == nil {
		return st
	}
	for _, j := range g.Jobs() {
		a, ok := s0.Get(j.ID)
		if !ok {
			continue
		}
		switch {
		case a.Finish <= clock:
			st.Finished[j.ID] = FinishedJob{Resource: a.Resource, AST: a.Start, AFT: a.Finish}
			for _, e := range g.Succs(j.ID) {
				st.SetTransfer(j.ID, e.To, a.Resource, a.Finish)
				sa, ok := s0.Get(e.To)
				if !ok || opts.Credit == CreditNone {
					continue
				}
				// Transfer initiated at AFT toward the successor's
				// scheduled resource; it may still be in flight.
				eta := a.Finish + est.Comm(e, a.Resource, sa.Resource)
				if opts.Credit == CreditDelivered && eta > clock {
					continue
				}
				st.SetTransfer(j.ID, e.To, sa.Resource, eta)
			}
		case a.Start < clock && !opts.RestartRunning:
			st.Pinned[j.ID] = a
		}
	}
	return st
}

// Options configures the AHEFT rescheduler — an alias of the kernel's
// placement options, so the two layers cannot drift apart.
type Options = kernel.Options

// LoadState replays a map-based snapshot into the kernel's dense state:
// clock, finished outcomes, pinned assignments and the whole transfer
// ledger. The engine uses it to hand executor-derived snapshots to the
// kernel; Reschedule uses it for one-shot calls.
func LoadState(dst *kernel.State, st *ExecState) {
	dst.Reset()
	if st == nil {
		return
	}
	dst.Clock = st.Clock
	for j, f := range st.Finished {
		dst.Finish(j, f.Resource, f.AST, f.AFT)
	}
	for _, a := range st.Pinned {
		dst.Pin(a)
	}
	for key, row := range st.TransferAt {
		for r, t := range row {
			dst.SetTransfer(key.From, key.To, r, t)
		}
	}
}

// SyncState folds a map-based snapshot into the kernel's dense state
// WITHOUT resetting it. Every fact the executor reports is monotone —
// jobs never un-finish, files never un-arrive, and both SetTransfer
// implementations keep the earliest time — so re-applying the whole
// snapshot is idempotent and only genuinely new facts write (the dense
// ledger bumps its per-job input generation exactly on effective
// writes). Pins are rebuilt from scratch, matching the snapshot.
//
// Engines that hold one kernel.State across evaluations use this instead
// of LoadState so the kernel's incremental delta path can see what
// actually changed between events: Reset bumps the state epoch, which
// invalidates the delta memo unconditionally.
func SyncState(dst *kernel.State, st *ExecState) {
	if st == nil {
		dst.Reset()
		return
	}
	dst.Clock = st.Clock
	for j, f := range st.Finished {
		dst.Finish(j, f.Resource, f.AST, f.AFT)
	}
	dst.ClearPinned()
	for _, a := range st.Pinned {
		dst.Pin(a)
	}
	for key, row := range st.TransferAt {
		for r, t := range row {
			dst.SetTransfer(key.From, key.To, r, t)
		}
	}
}

// Reschedule implements procedure schedule(S0, P, H) of Fig. 3. It returns
// a complete schedule S1 covering every job of g: finished jobs keep their
// actual assignments, pinned running jobs keep their current assignments,
// and every other job is re-placed by the EFT-minimising loop over the
// resource set rs (the resources available at st.Clock). The caller
// compares S1's makespan with S0's and adopts S1 only if smaller (Fig. 2,
// lines 7–9).
//
// This is the stable one-shot entry point: it builds a fresh kernel per
// call. Engine loops that reschedule at every event hold a kernel.Kernel
// (and its dense State) across calls instead, which also reuses the rank
// cache and placement scratch.
func Reschedule(g *dag.Graph, est cost.Estimator, rs []grid.Resource, st *ExecState, opts Options) (*schedule.Schedule, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("aheft: empty resource set")
	}
	k := kernel.New(g, est)
	hint := 0
	for _, r := range rs {
		if int(r.ID)+1 > hint {
			hint = int(r.ID) + 1
		}
	}
	ks := k.NewState(hint)
	LoadState(ks, st)
	return k.Reschedule(rs, ks, opts)
}

// FEA implements Eq. 1: the earliest time the output of predecessor m is
// available on resource r for its successor (the job being placed), given
// the new partial schedule s1 and the snapshot st.
//
// This is the map-based reference form — the kernel evaluates the same
// four cases over its dense state on the hot path, and the property
// suites cross-check kernel placements against this function.
func FEA(g *dag.Graph, est cost.Estimator, st *ExecState, s1 *schedule.Schedule, e dag.Edge, r grid.ID) float64 {
	m := e.From
	if f, done := st.Finished[m]; done {
		if t, ok := st.TransferAt[EdgeKey{From: m, To: e.To}][r]; ok {
			// Case 1 (and its in-flight variant): the file is on r —
			// either produced there (t = AFT) or delivered by a transfer
			// the old schedule already initiated.
			return t
		}
		// Case 2: finished elsewhere and the file was never directed at
		// r — a fresh transfer starts now; it cannot start in the past.
		return st.Clock + est.Comm(e, f.Resource, r)
	}
	// Unfinished predecessor: it has already been placed in s1 (rank order
	// guarantees predecessors precede successors).
	pa, ok := s1.Get(m)
	if !ok {
		panic(fmt.Sprintf("aheft: FEA called before predecessor %d placed", m))
	}
	if pa.Resource == r {
		// Case 3: produced on this very resource in the new schedule.
		return pa.Finish
	}
	// Otherwise: produced elsewhere in the new schedule, transfer follows
	// its (re)scheduled finish time SFT(m).
	return pa.Finish + est.Comm(e, pa.Resource, r)
}

// RemainingMakespan returns the makespan of schedule s — max finish over
// all jobs, finished or not. Both S0 and S1 cover the full job set, so the
// Fig. 2 comparison S0.makespan > S1.makespan is a direct comparison of
// this value.
func RemainingMakespan(s *schedule.Schedule) float64 { return s.Makespan() }

// Better reports whether candidate improves on current by more than eps —
// the adoption test of Fig. 2 line 7, with a small tolerance so that
// floating-point noise never triggers a spurious schedule switch.
func Better(current, candidate float64, eps float64) bool {
	if eps <= 0 {
		eps = 1e-9
	}
	return candidate < current-eps
}

// SortedJobs returns the snapshot's finished jobs in ID order; useful for
// deterministic reporting.
func (st *ExecState) SortedJobs() []dag.JobID {
	out := make([]dag.JobID, 0, len(st.Finished))
	for j := range st.Finished {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Unfinished returns how many of g's jobs are neither finished nor pinned
// in the snapshot.
func (st *ExecState) Unfinished(g *dag.Graph) int {
	n := 0
	for _, j := range g.Jobs() {
		if _, done := st.Finished[j.ID]; done {
			continue
		}
		if _, pinned := st.Pinned[j.ID]; pinned {
			continue
		}
		n++
	}
	return n
}

// Progress returns the fraction of jobs finished at the snapshot, in
// [0, 1].
func (st *ExecState) Progress(g *dag.Graph) float64 {
	if g.Len() == 0 {
		return 0
	}
	return float64(len(st.Finished)) / float64(g.Len())
}

// Validate checks internal consistency of a snapshot: finish times do
// not exceed the clock, outputs are never available before their producer
// finishes, and pinned assignments straddle the clock. The executor calls
// this in race-free debug paths and tests exercise it directly.
func (st *ExecState) Validate() error {
	for j, f := range st.Finished {
		if f.AFT > st.Clock+1e-9 {
			return fmt.Errorf("aheft: job %d finished at %g after clock %g", j, f.AFT, st.Clock)
		}
		if f.AST > f.AFT {
			return fmt.Errorf("aheft: job %d has AST %g > AFT %g", j, f.AST, f.AFT)
		}
	}
	for k, row := range st.TransferAt {
		f, ok := st.Finished[k.From]
		if !ok {
			return fmt.Errorf("aheft: transfer recorded for unfinished producer %d", k.From)
		}
		if t, ok := row[f.Resource]; !ok || t != f.AFT {
			return fmt.Errorf("aheft: file (%d→%d) on producer's resource at %g, want AFT %g",
				k.From, k.To, t, f.AFT)
		}
		for r, t := range row {
			if t < f.AFT-1e-9 {
				return fmt.Errorf("aheft: file (%d→%d) available on r%d at %g before AFT %g",
					k.From, k.To, r, t, f.AFT)
			}
		}
	}
	for j, a := range st.Pinned {
		if _, done := st.Finished[j]; done {
			return fmt.Errorf("aheft: job %d both finished and pinned", j)
		}
		if a.Start > st.Clock || a.Finish <= st.Clock {
			return fmt.Errorf("aheft: pinned job %d [%g,%g) does not straddle clock %g", j, a.Start, a.Finish, st.Clock)
		}
	}
	return nil
}
