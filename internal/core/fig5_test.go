package core

import (
	"testing"

	"aheft/internal/dag"
	"aheft/internal/heft"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// TestFig5ExhaustiveOptimal verifies the FEA/EST/EFT model against the
// paper's published worked example by brute force: over all 4^8 forced
// resource assignments for the eight reschedulable jobs at clock 15, the
// best reachable makespan is exactly the paper's 76. This pins down the
// semantics of the snapshot (pinned running job, producer-level output
// availability, clock-floored fresh transfers) independently of the greedy
// placement heuristic.
func TestFig5ExhaustiveOptimal(t *testing.T) {
	sc := workload.SampleScenario()
	g, est := sc.Graph, sc.Estimator()
	s0, err := heft.Schedule(g, est, sc.Pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := Snapshot(g, est, s0, 15, SnapshotOptions{})
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	rs := sc.Pool.AvailableAt(15)
	ranks, err := heft.RankU(g, est, rs)
	if err != nil {
		t.Fatal(err)
	}
	var order []dag.JobID
	for _, j := range heft.Order(ranks) {
		if _, done := st.Finished[j]; done {
			continue
		}
		if _, pin := st.Pinned[j]; pin {
			continue
		}
		order = append(order, j)
	}
	if len(order) != 8 {
		t.Fatalf("reschedulable jobs = %d, want 8 (all but finished n1 and running n3)", len(order))
	}

	total := 1
	for range order {
		total *= len(rs)
	}
	best := 1e18
	for mask := 0; mask < total; mask++ {
		s1 := schedule.New()
		for j, f := range st.Finished {
			s1.Assign(schedule.Assignment{Job: j, Resource: f.Resource, Start: f.AST, Finish: f.AFT})
		}
		for _, a := range st.Pinned {
			s1.Assign(a)
		}
		m := mask
		for _, job := range order {
			r := rs[m%len(rs)]
			m /= len(rs)
			ready := st.Clock
			for _, e := range g.Preds(job) {
				if v := FEA(g, est, st, s1, e, r.ID); v > ready {
					ready = v
				}
			}
			w := est.Comp(job, r.ID)
			start := s1.EarliestStart(r.ID, ready, w, true)
			s1.Assign(schedule.Assignment{Job: job, Resource: r.ID, Start: start, Finish: start + w})
		}
		if mk := s1.Makespan(); mk < best {
			best = mk
		}
	}
	if best != 76 {
		t.Fatalf("best reachable reschedule makespan = %g, want the paper's 76", best)
	}
}
