package core

import (
	"fmt"
	"math"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

func sampleSetup(t *testing.T) (*dag.Graph, cost.Estimator, *grid.Pool) {
	t.Helper()
	sc := workload.SampleScenario()
	return sc.Graph, sc.Estimator(), sc.Pool
}

// TestInitialRescheduleEqualsHEFT verifies §3.4's identity: with clock 0
// and no history, AHEFT's schedule(S0,P,H) is exactly HEFT.
func TestInitialRescheduleEqualsHEFT(t *testing.T) {
	g, est, pool := sampleSetup(t)
	rs := pool.Initial()
	want, err := heft.Schedule(g, est, rs, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reschedule(g, est, rs, NewExecState(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range g.Jobs() {
		if got.MustGet(j.ID) != want.MustGet(j.ID) {
			t.Fatalf("job %s: AHEFT initial %+v != HEFT %+v",
				j.Name, got.MustGet(j.ID), want.MustGet(j.ID))
		}
	}
}

// TestInitialRescheduleEqualsHEFTRandom extends the identity over random
// workloads and both placement policies.
func TestInitialRescheduleEqualsHEFTRandom(t *testing.T) {
	root := rng.New(0xF00)
	for i := 0; i < 25; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		g, err := workload.RandomDAG(workload.RandomParams{
			Jobs: 5 + r.IntN(50), CCR: 2, OutDegree: 0.3, Beta: 0.5,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		table, err := workload.SampleCosts(g, 4, 0.5, 100, workload.PerJob, r)
		if err != nil {
			t.Fatal(err)
		}
		rs := grid.StaticPool(4).Initial()
		for _, noins := range []bool{false, true} {
			want, err := heft.Schedule(g, cost.Exact(table), rs, heft.Options{NoInsertion: noins})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Reschedule(g, cost.Exact(table), rs, NewExecState(), Options{NoInsertion: noins})
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan() != want.Makespan() {
				t.Fatalf("case %d noins=%v: AHEFT initial makespan %g != HEFT %g",
					i, noins, got.Makespan(), want.Makespan())
			}
		}
	}
}

func TestSnapshotClassifiesJobs(t *testing.T) {
	g, est, pool := sampleSetup(t)
	s0, err := heft.Schedule(g, est, pool.Initial(), heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := Snapshot(g, est, s0, 15, SnapshotOptions{})
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(st.Finished) != 1 {
		t.Fatalf("finished = %d, want 1 (n1)", len(st.Finished))
	}
	if _, ok := st.Finished[g.JobByName("n1")]; !ok {
		t.Fatal("n1 should be finished at t=15")
	}
	if len(st.Pinned) != 1 {
		t.Fatalf("pinned = %d, want 1 (running n3)", len(st.Pinned))
	}
	if _, ok := st.Pinned[g.JobByName("n3")]; !ok {
		t.Fatal("n3 should be pinned at t=15")
	}
	if st.Unfinished(g) != 8 {
		t.Fatalf("unfinished = %d, want 8", st.Unfinished(g))
	}
	if p := st.Progress(g); p != 0.1 {
		t.Fatalf("progress = %g, want 0.1", p)
	}
}

func TestSnapshotRestartRunning(t *testing.T) {
	g, est, pool := sampleSetup(t)
	s0, _ := heft.Schedule(g, est, pool.Initial(), heft.Options{})
	st := Snapshot(g, est, s0, 15, SnapshotOptions{RestartRunning: true})
	if len(st.Pinned) != 0 {
		t.Fatalf("restart policy should pin nothing, got %v", st.Pinned)
	}
	if st.Unfinished(g) != 9 {
		t.Fatalf("unfinished = %d, want 9", st.Unfinished(g))
	}
}

func TestSnapshotBoundaryExactFinish(t *testing.T) {
	g, est, pool := sampleSetup(t)
	s0, _ := heft.Schedule(g, est, pool.Initial(), heft.Options{})
	// n1 finishes exactly at 9: it must count as finished at clock 9, and
	// n3 (starting exactly at 9) must not be pinned.
	st := Snapshot(g, est, s0, 9, SnapshotOptions{})
	if _, ok := st.Finished[g.JobByName("n1")]; !ok {
		t.Fatal("job finishing exactly at clock must be finished")
	}
	if _, ok := st.Pinned[g.JobByName("n3")]; ok {
		t.Fatal("job starting exactly at clock must be reschedulable, not pinned")
	}
}

func TestSnapshotTransferCredits(t *testing.T) {
	g, est, pool := sampleSetup(t)
	s0, _ := heft.Schedule(g, est, pool.Initial(), heft.Options{})
	n1 := g.JobByName("n1")
	n2 := g.JobByName("n2")
	// n1 (on r3=ID2, AFT 9) shipped the n1→n2 file toward n2's resource
	// r1=ID0, arriving at 9+18=27 — in flight at clock 15.
	st := Snapshot(g, est, s0, 15, SnapshotOptions{})
	if tt := st.TransferAt[EdgeKey{From: n1, To: n2}][0]; tt != 27 {
		t.Fatalf("in-flight transfer credited at %g, want 27", tt)
	}
	// CreditDelivered cancels in-flight transfers.
	st = Snapshot(g, est, s0, 15, SnapshotOptions{Credit: CreditDelivered})
	if _, ok := st.TransferAt[EdgeKey{From: n1, To: n2}][0]; ok {
		t.Fatal("CreditDelivered should drop the in-flight transfer")
	}
	// CreditNone drops even delivered ones (own-resource copies remain).
	st = Snapshot(g, est, s0, 40, SnapshotOptions{Credit: CreditNone})
	if _, ok := st.TransferAt[EdgeKey{From: n1, To: n2}][0]; ok {
		t.Fatal("CreditNone should record no cross-resource files")
	}
	if tt := st.TransferAt[EdgeKey{From: n1, To: n2}][2]; tt != 9 {
		t.Fatalf("producer-resource copy missing under CreditNone: %g", tt)
	}
}

func TestFEACases(t *testing.T) {
	g, est, pool := sampleSetup(t)
	s0, _ := heft.Schedule(g, est, pool.Initial(), heft.Options{})
	st := Snapshot(g, est, s0, 15, SnapshotOptions{})
	s1 := schedule.New()
	n1, n2 := g.JobByName("n1"), g.JobByName("n2")
	edge := dag.Edge{From: n1, To: n2, Data: 18}

	// Case 1: n1 finished on r3 (ID 2) — available at AFT 9.
	if v := FEA(g, est, st, s1, edge, 2); v != 9 {
		t.Fatalf("case 1: FEA = %g, want 9", v)
	}
	// In-flight credit: the file is already moving to ID 0, ETA 27.
	if v := FEA(g, est, st, s1, edge, 0); v != 27 {
		t.Fatalf("in-flight: FEA = %g, want 27", v)
	}
	// Case 2: never shipped toward ID 3 — fresh transfer from clock 15.
	if v := FEA(g, est, st, s1, edge, 3); v != 15+18 {
		t.Fatalf("case 2: FEA = %g, want 33", v)
	}

	// Case 3 / otherwise: unfinished predecessor placed in s1.
	n4, n9 := g.JobByName("n4"), g.JobByName("n9")
	e49 := dag.Edge{From: n4, To: n9, Data: 23}
	s1.Assign(schedule.Assignment{Job: n4, Resource: 1, Start: 18, Finish: 26})
	if v := FEA(g, est, st, s1, e49, 1); v != 26 {
		t.Fatalf("case 3 (same resource): FEA = %g, want SFT 26", v)
	}
	if v := FEA(g, est, st, s1, e49, 0); v != 26+23 {
		t.Fatalf("otherwise (cross): FEA = %g, want 49", v)
	}
}

func TestFEAPanicsOnUnplacedPredecessor(t *testing.T) {
	g, est, pool := sampleSetup(t)
	s0, _ := heft.Schedule(g, est, pool.Initial(), heft.Options{})
	st := Snapshot(g, est, s0, 15, SnapshotOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unplaced unfinished predecessor")
		}
	}()
	n4, n9 := g.JobByName("n4"), g.JobByName("n9")
	FEA(g, est, st, schedule.New(), dag.Edge{From: n4, To: n9, Data: 23}, 0)
}

// TestRescheduleRespectsClockAndHistory: rescheduled jobs never start
// before the clock, never overlap finished/pinned work, and the schedule
// stays structurally valid.
func TestRescheduleRespectsClockAndHistory(t *testing.T) {
	root := rng.New(0xC0FFEE)
	for i := 0; i < 30; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		gp := workload.GridParams{
			InitialResources: 2 + r.IntN(6),
			ChangeInterval:   200,
			ChangePct:        0.3,
			MaxEvents:        3,
		}
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 10 + r.IntN(40), CCR: []float64{0.5, 5}[r.IntN(2)], OutDegree: 0.3, Beta: 0.5,
		}, gp, r)
		if err != nil {
			t.Fatal(err)
		}
		est := sc.Estimator()
		s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		clock := s0.Makespan() * r.Uniform(0.1, 0.9)
		st := Snapshot(sc.Graph, est, s0, clock, SnapshotOptions{})
		if err := st.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		s1, err := Reschedule(sc.Graph, est, sc.Pool.AvailableAt(clock), st, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Complete and overlap-free.
		if err := s1.Validate(sc.Graph, schedule.ValidateOptions{Pool: sc.Pool}); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for _, j := range sc.Graph.Jobs() {
			a := s1.MustGet(j.ID)
			if f, done := st.Finished[j.ID]; done {
				if a.Resource != f.Resource || a.Start != f.AST || a.Finish != f.AFT {
					t.Fatalf("case %d: finished job %s moved to %+v", i, j.Name, a)
				}
				continue
			}
			if p, pinned := st.Pinned[j.ID]; pinned {
				if a != p {
					t.Fatalf("case %d: pinned job %s moved to %+v", i, j.Name, a)
				}
				continue
			}
			if a.Start < clock-1e-9 {
				t.Fatalf("case %d: rescheduled job %s starts %g before clock %g",
					i, j.Name, a.Start, clock)
			}
		}
	}
}

// TestRescheduleWithMoreResourcesNeverHurts: the adoption rule protects
// the makespan, but even the raw reschedule with a superset of resources
// at clock 0 must not be worse than the initial schedule it would replace
// (same state, more choices, greedy ties aside it could be slightly worse
// — so we assert through the adoption rule as the planner applies it).
func TestAdoptionRuleNeverIncreasesMakespan(t *testing.T) {
	root := rng.New(0xADA)
	for i := 0; i < 20; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 10 + r.IntN(30), CCR: 5, OutDegree: 0.3, Beta: 0.5,
		}, workload.GridParams{
			InitialResources: 3, ChangeInterval: 100, ChangePct: 0.4, MaxEvents: 5,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		est := sc.Estimator()
		s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cur := s0
		for _, tc := range sc.Pool.ChangeTimes() {
			if tc >= cur.Makespan() {
				break
			}
			st := Snapshot(sc.Graph, est, cur, tc, SnapshotOptions{})
			s1, err := Reschedule(sc.Graph, est, sc.Pool.AvailableAt(tc), st, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if Better(cur.Makespan(), s1.Makespan(), 0) {
				if s1.Makespan() >= cur.Makespan() {
					t.Fatalf("Better() lied: %g vs %g", s1.Makespan(), cur.Makespan())
				}
				cur = s1
			}
		}
		if cur.Makespan() > s0.Makespan()+1e-9 {
			t.Fatalf("case %d: adaptive makespan %g exceeds static %g",
				i, cur.Makespan(), s0.Makespan())
		}
	}
}

func TestBetter(t *testing.T) {
	if !Better(100, 99, 0) {
		t.Fatal("99 should be better than 100")
	}
	if Better(100, 100, 0) {
		t.Fatal("equal is not better")
	}
	if Better(100, 99.99, 0.1) {
		t.Fatal("improvement below eps should not count")
	}
	if Better(100, 100.0-1e-12, 0) {
		t.Fatal("float-noise improvement should not count")
	}
}

func TestRescheduleEmptyResourceSet(t *testing.T) {
	g, est, _ := sampleSetup(t)
	if _, err := Reschedule(g, est, nil, NewExecState(), Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateCatchesCorruptState(t *testing.T) {
	st := NewExecState()
	st.Clock = 10
	st.Finished[0] = FinishedJob{Resource: 0, AST: 0, AFT: 20}
	if err := st.Validate(); err == nil {
		t.Fatal("AFT after clock not caught")
	}
	st = NewExecState()
	st.Clock = 10
	st.SetTransfer(0, 1, 0, 5) // producer 0 not finished
	if err := st.Validate(); err == nil {
		t.Fatal("transfer for unfinished producer not caught")
	}
	st = NewExecState()
	st.Clock = 10
	st.Finished[0] = FinishedJob{Resource: 0, AST: 0, AFT: 5}
	st.SetTransfer(0, 1, 0, 5)
	st.SetTransfer(0, 1, 1, 3) // before AFT
	if err := st.Validate(); err == nil {
		t.Fatal("pre-AFT availability not caught")
	}
	st = NewExecState()
	st.Clock = 10
	st.Pinned[3] = schedule.Assignment{Job: 3, Resource: 0, Start: 11, Finish: 12}
	if err := st.Validate(); err == nil {
		t.Fatal("pinned job not straddling clock not caught")
	}
}

func TestSortedJobs(t *testing.T) {
	st := NewExecState()
	st.Finished[3] = FinishedJob{}
	st.Finished[1] = FinishedJob{}
	js := st.SortedJobs()
	if len(js) != 2 || js[0] != 1 || js[1] != 3 {
		t.Fatalf("SortedJobs = %v", js)
	}
}

// TestTieWindowNeverWorse: order exploration returns the best of the
// candidates, so it can only improve on the greedy base schedule.
func TestTieWindowNeverWorse(t *testing.T) {
	root := rng.New(0x7E7E)
	for i := 0; i < 20; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		g, err := workload.RandomDAG(workload.RandomParams{
			Jobs: 10 + r.IntN(30), CCR: 2, OutDegree: 0.3, Beta: 1,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		table, err := workload.SampleCosts(g, 4, 1, 100, workload.PerJob, r)
		if err != nil {
			t.Fatal(err)
		}
		rs := grid.StaticPool(4).Initial()
		base, err := Reschedule(g, cost.Exact(table), rs, NewExecState(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		explored, err := Reschedule(g, cost.Exact(table), rs, NewExecState(), Options{TieWindow: 0.08})
		if err != nil {
			t.Fatal(err)
		}
		if explored.Makespan() > base.Makespan()+1e-9 {
			t.Fatalf("case %d: tie-window made things worse: %g > %g",
				i, explored.Makespan(), base.Makespan())
		}
	}
}

func TestRemainingMakespan(t *testing.T) {
	s := schedule.New()
	s.Assign(schedule.Assignment{Job: 0, Resource: 0, Start: 0, Finish: 7})
	if RemainingMakespan(s) != 7 {
		t.Fatal("RemainingMakespan wrong")
	}
	if !math.IsInf(math.Inf(1), 1) { // keep math import honest
		t.Fatal("unreachable")
	}
}
