package core

import (
	"math"
	"testing"
	"testing/quick"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// quickScenario derives a small scenario deterministically from a quick
// seed.
func quickScenario(seed uint64) (*workload.Scenario, error) {
	r := rng.New(seed)
	return workload.RandomScenario(workload.RandomParams{
		Jobs:      8 + r.IntN(25),
		CCR:       []float64{0.3, 1, 4}[r.IntN(3)],
		OutDegree: 0.3,
		Beta:      []float64{0, 0.5, 1}[r.IntN(3)],
		Alpha:     []float64{0.5, 1, 2}[r.IntN(3)],
	}, workload.GridParams{
		InitialResources: 2 + r.IntN(5),
		ChangeInterval:   150 + 100*float64(r.IntN(4)),
		ChangePct:        0.3,
		MaxEvents:        3,
	}, r)
}

// TestQuickRescheduleInvariants: for arbitrary scenarios and snapshot
// clocks, a reschedule (a) covers every job, (b) never overlaps work on a
// resource, (c) never moves finished or pinned jobs, (d) never starts a
// rescheduled job before the clock or before its inputs can be there, and
// (e) yields a snapshot that passes its own validator.
func TestQuickRescheduleInvariants(t *testing.T) {
	f := func(seed uint64, clockFrac float64) bool {
		clockFrac = math.Abs(clockFrac)
		if math.IsNaN(clockFrac) || math.IsInf(clockFrac, 0) {
			clockFrac = 0.5
		}
		clockFrac = math.Mod(clockFrac, 1)
		sc, err := quickScenario(seed)
		if err != nil {
			return false
		}
		est := sc.Estimator()
		s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
		if err != nil {
			return false
		}
		clock := clockFrac * s0.Makespan()
		st := Snapshot(sc.Graph, est, s0, clock, SnapshotOptions{})
		if st.Validate() != nil {
			return false
		}
		s1, err := Reschedule(sc.Graph, est, sc.Pool.AvailableAt(clock), st, Options{})
		if err != nil {
			return false
		}
		if s1.Validate(sc.Graph, schedule.ValidateOptions{Pool: sc.Pool}) != nil {
			return false
		}
		for _, j := range sc.Graph.Jobs() {
			a := s1.MustGet(j.ID)
			if fj, done := st.Finished[j.ID]; done {
				if a.Resource != fj.Resource || a.Start != fj.AST || a.Finish != fj.AFT {
					return false
				}
				continue
			}
			if p, pinned := st.Pinned[j.ID]; pinned {
				if a != p {
					return false
				}
				continue
			}
			if a.Start < clock-1e-9 {
				return false
			}
			// Input feasibility per FEA.
			for _, e := range sc.Graph.Preds(j.ID) {
				if a.Start+1e-9 < FEA(sc.Graph, est, st, s1, e, a.Resource) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRescheduleDurationExact: every rescheduled job occupies exactly
// its estimated duration — no silent stretching or shrinking.
func TestQuickRescheduleDurationExact(t *testing.T) {
	f := func(seed uint64) bool {
		sc, err := quickScenario(seed)
		if err != nil {
			return false
		}
		est := sc.Estimator()
		s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
		if err != nil {
			return false
		}
		clock := s0.Makespan() / 2
		st := Snapshot(sc.Graph, est, s0, clock, SnapshotOptions{})
		s1, err := Reschedule(sc.Graph, est, sc.Pool.AvailableAt(clock), st, Options{})
		if err != nil {
			return false
		}
		for _, j := range sc.Graph.Jobs() {
			a := s1.MustGet(j.ID)
			want := est.Comp(j.ID, a.Resource)
			if diff := a.Duration() - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFEANeverBeforeProducer: FEA can never report a file available
// before its producer finishes, for any resource.
func TestQuickFEANeverBeforeProducer(t *testing.T) {
	f := func(seed uint64) bool {
		sc, err := quickScenario(seed)
		if err != nil {
			return false
		}
		est := sc.Estimator()
		s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
		if err != nil {
			return false
		}
		clock := s0.Makespan() / 3
		st := Snapshot(sc.Graph, est, s0, clock, SnapshotOptions{})
		s1, err := Reschedule(sc.Graph, est, sc.Pool.AvailableAt(clock), st, Options{})
		if err != nil {
			return false
		}
		for _, j := range sc.Graph.Jobs() {
			for _, e := range sc.Graph.Preds(j.ID) {
				var producerFinish float64
				if fj, done := st.Finished[e.From]; done {
					producerFinish = fj.AFT
				} else {
					producerFinish = s1.MustGet(e.From).Finish
				}
				for _, r := range sc.Pool.AvailableAt(clock) {
					if FEA(sc.Graph, est, st, s1, e, r.ID) < producerFinish-1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Keep the imports honest for quick setups that did not need them all.
var (
	_ = dag.NoJob
	_ = grid.NoResource
	_ cost.Estimator
)
