package occupancy

import (
	"testing"

	"aheft/internal/grid"
)

func flood(n int, res grid.ID, pinned int) []Reservation {
	rs := make([]Reservation, n)
	for i := range rs {
		rs[i] = Reservation{Job: i, Resource: res, Start: float64(i), Finish: float64(i) + 1, Pinned: i < pinned}
	}
	return rs
}

// TestShareCapTruncatesFlood: with a foreign tenant on the grid, a
// publish that would blanket the ledger is truncated so the flooding
// tenant's share stays at the cap; alone on the grid it is unbounded.
func TestShareCapTruncatesFlood(t *testing.T) {
	l := NewLedger(4)
	l.SetShareCap(0.5)
	l.BindTenant("wf-greedy", "greedy")
	l.BindTenant("wf-victim", "victim")

	// Alone: no cap.
	l.SetOwner("wf-greedy", flood(100, 0, 0))
	if n := l.Count("wf-greedy"); n != 100 {
		t.Fatalf("lone tenant capped: %d of 100 kept", n)
	}

	// A victim appears with 10 reservations; the greedy tenant's next
	// publish may keep at most cap*F/(1-cap) = 10 entries.
	l.SetOwner("wf-victim", flood(10, 1, 0))
	l.SetOwner("wf-greedy", flood(100, 0, 0))
	if n := l.Count("wf-greedy"); n != 10 {
		t.Fatalf("capped publish kept %d, want 10", n)
	}
	// Share accounting holds: 10 / (10+10) = 0.5.
	if tot := l.Total(); tot != 20 {
		t.Fatalf("total = %d", tot)
	}

	// The earliest-starting claims survive (the speculative tail goes).
	for _, r := range l.View("wf-greedy").Own() {
		if r.Start >= 10 {
			t.Fatalf("truncation kept far-future claim at start %g", r.Start)
		}
	}
}

// TestShareCapKeepsPins: running work is physical — pinned claims
// survive even when the cap would exclude them, and they consume the
// budget first.
func TestShareCapKeepsPins(t *testing.T) {
	l := NewLedger(4)
	l.SetShareCap(0.25)
	l.BindTenant("a", "ta")
	l.BindTenant("b", "tb")
	l.SetOwner("b", flood(6, 1, 0))
	// cap*F/(1-cap) = 0.25*6/0.75 = 2 allowed; publish 5 with 3 pinned at
	// the *latest* starts: all 3 pins must survive, nothing else fits.
	rs := []Reservation{
		{Job: 0, Resource: 0, Start: 0, Finish: 1},
		{Job: 1, Resource: 0, Start: 1, Finish: 2},
		{Job: 2, Resource: 0, Start: 7, Finish: 8, Pinned: true},
		{Job: 3, Resource: 0, Start: 8, Finish: 9, Pinned: true},
		{Job: 4, Resource: 0, Start: 9, Finish: 10, Pinned: true},
	}
	l.SetOwner("a", rs)
	own := l.View("a").Own()
	if len(own) != 3 {
		t.Fatalf("kept %d claims, want the 3 pins", len(own))
	}
	for _, r := range own {
		if !r.Pinned {
			t.Fatalf("unpinned claim %d survived while pins filled the budget", r.Job)
		}
	}
}

// TestShareCapCountsByTenant: two workflows of one tenant share one
// budget; a second workflow of the same tenant cannot double the share.
func TestShareCapCountsByTenant(t *testing.T) {
	l := NewLedger(4)
	l.SetShareCap(0.5)
	l.BindTenant("wf-1", "greedy")
	l.BindTenant("wf-2", "greedy")
	l.BindTenant("wf-v", "victim")
	l.SetOwner("wf-v", flood(10, 1, 0))
	l.SetOwner("wf-1", flood(100, 0, 0))
	l.SetOwner("wf-2", flood(100, 2, 0))
	got := l.Count("wf-1") + l.Count("wf-2")
	if got > 10 {
		t.Fatalf("tenant holds %d claims across two workflows, cap allows 10", got)
	}
}

// TestShareCapLeakFree: truncated publishes change nothing about
// terminal cleanup — Release drains the owner to zero and drops the
// tenant binding.
func TestShareCapLeakFree(t *testing.T) {
	l := NewLedger(4)
	l.SetShareCap(0.5)
	l.BindTenant("a", "ta")
	l.BindTenant("b", "tb")
	l.SetOwner("b", flood(10, 1, 0))
	l.SetOwner("a", flood(100, 0, 20))
	if n := l.Release("a"); n == 0 {
		t.Fatal("nothing to release")
	}
	if l.Count("a") != 0 {
		t.Fatalf("owner a leaked %d", l.Count("a"))
	}
	l.Release("b")
	if l.Total() != 0 {
		t.Fatalf("ledger leaked %d reservations", l.Total())
	}
	// ReleaseJob on a truncated (absent) claim is a clean no-op.
	l.SetOwner("b", flood(10, 1, 0))
	l.SetOwner("a", flood(100, 0, 0))
	if l.ReleaseJob("a", 99) {
		t.Fatal("released a claim the cap truncated away")
	}
}

// TestShareCapDisabled: zero (or out-of-range) caps change nothing.
func TestShareCapDisabled(t *testing.T) {
	for _, frac := range []float64{0, 1, 1.5, -0.3} {
		l := NewLedger(2)
		l.SetShareCap(frac)
		l.BindTenant("a", "ta")
		l.BindTenant("b", "tb")
		l.SetOwner("b", flood(5, 1, 0))
		l.SetOwner("a", flood(50, 0, 0))
		if n := l.Count("a"); n != 50 {
			t.Fatalf("cap %g truncated to %d", frac, n)
		}
	}
}

// TestPinnedSurvivesExportImport: the pin flag is part of the durable
// reservation state.
func TestPinnedSurvivesExportImport(t *testing.T) {
	l := NewLedger(2)
	l.SetOwner("a", []Reservation{{Job: 0, Resource: 0, Start: 1, Finish: 2, Pinned: true}})
	out := l.Export()
	if len(out) != 1 || !out[0].Pinned {
		t.Fatalf("export lost pin: %+v", out)
	}
	l2 := NewLedger(2)
	l2.Import(out)
	own := l2.View("a").Own()
	if len(own) != 1 || !own[0].Pinned {
		t.Fatalf("import lost pin: %+v", own)
	}
}
