// Package occupancy is the reservation ledger behind shard-owned shared
// grids: the record of every placed job's (resource, start, finish)
// compute interval across the live workflows attached to one grid. The
// paper frames adaptive rescheduling as a response to a *shared* grid —
// resources slow down and fill up because other tenants are using them —
// and this ledger is what makes that contention endogenous: each
// workflow's planner sees every other workflow's reservations as busy
// intervals during slot search (kernel.Occupancy), so concurrent
// workflows on one grid plan around each other instead of against
// private pool snapshots.
//
// Ownership and lifecycle: a Ledger belongs to one shared grid, which
// lives on one shard. Every mutation happens on that shard's single
// worker goroutine (the same discipline the kernels follow), but status
// endpoints and metrics readers aggregate ledgers from other goroutines,
// so the ledger is internally synchronised. Reads on the planning hot
// path (AppendBusy) take the one uncontended mutex and copy into a
// caller-owned buffer — no allocation in steady state.
//
// An owner's reservations are replaced wholesale when its plan changes
// (SetOwner), narrowed job by job as execution progresses (Update on
// start, ReleaseJob on finish), and dropped atomically when the workflow
// reaches any terminal state (Release). A leaked reservation — an entry
// surviving its owner — would silently shrink the grid for every other
// tenant forever, so Release returns the count removed and Count/Total
// exist for tests and metrics to prove the ledger drains to zero.
package occupancy

import (
	"math"
	"sort"
	"sync"

	"aheft/internal/grid"
	"aheft/internal/kernel"
)

// Reservation is one job's claimed compute interval on a resource.
type Reservation struct {
	Job      int
	Resource grid.ID
	Start    float64
	Finish   float64
	// Pinned marks a running job's live claim: the work is physically on
	// the resource, so the per-tenant share cap never truncates it.
	Pinned bool
}

// entry is a stored reservation tagged with its owner.
type entry struct {
	owner         string
	job           int
	start, finish float64
	pinned        bool
}

// Ledger records the reservations of every workflow attached to one
// shared grid, indexed by resource for the slot-search read path.
type Ledger struct {
	mu     sync.Mutex
	byRes  [][]entry      // per resource, sorted by (start, owner, job)
	owners map[string]int // owner -> live reservation count

	// Per-tenant fairness: capFrac, when in (0, 1), bounds one tenant's
	// share of the ledger's entries at whole-plan publish time (plan
	// adoption) whenever other tenants hold reservations — a flooding
	// tenant cannot blanket the grid's future and starve everyone else's
	// slot search. tenantOf maps an owning workflow to its tenant; an
	// unbound owner is its own tenant.
	capFrac  float64
	tenantOf map[string]string

	// Transfer reservations (transfers.go): per capacity channel, the
	// planned file stagings of every attached workflow, lazily allocated
	// so data-oblivious grids never pay for them.
	byCh    map[string][]tentry // per channel, sorted by (start, owner, job, file)
	towners map[string]int      // owner -> live transfer-reservation count
}

// NewLedger returns an empty ledger sized for resHint resources (it grows
// on demand if reservations name higher IDs).
func NewLedger(resHint int) *Ledger {
	if resHint < 0 {
		resHint = 0
	}
	return &Ledger{
		byRes:    make([][]entry, resHint),
		owners:   make(map[string]int),
		tenantOf: make(map[string]string),
	}
}

// SetShareCap bounds any one tenant's share of the ledger's reservations
// at publish time to frac (0 or >= 1 disables the cap). Pinned entries
// are always kept, and a tenant alone on the grid is never capped.
func (l *Ledger) SetShareCap(frac float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.capFrac = frac
}

// BindTenant associates an owning workflow with its tenant for share-cap
// accounting. Release drops the binding with the reservations.
func (l *Ledger) BindTenant(owner, tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tenant != "" {
		l.tenantOf[owner] = tenant
	}
}

func (l *Ledger) tenantLocked(owner string) string {
	if t := l.tenantOf[owner]; t != "" {
		return t
	}
	return owner
}

// capLocked applies the per-tenant share cap to a whole-plan publish:
// with foreign-tenant entries present, the owner may hold at most enough
// reservations to keep its tenant's share of the ledger at capFrac —
// n such that (own + n) <= capFrac * (foreign + own + n). Pinned claims
// are always kept (running work is physical); among the rest the
// earliest-starting survive, truncating the speculative far-future tail.
func (l *Ledger) capLocked(owner string, rs []Reservation) []Reservation {
	if l.capFrac <= 0 || l.capFrac >= 1 || len(rs) == 0 {
		return rs
	}
	tenant := l.tenantLocked(owner)
	own, foreign := 0, 0
	for o, c := range l.owners {
		if l.tenantLocked(o) == tenant {
			own += c
		} else {
			foreign += c
		}
	}
	if foreign == 0 {
		return rs
	}
	allow := int(math.Floor(l.capFrac*float64(foreign)/(1-l.capFrac))) - own
	if allow >= len(rs) {
		return rs
	}
	if allow < 0 {
		allow = 0
	}
	kept := make([]Reservation, 0, allow)
	budget := allow
	for _, r := range rs {
		if r.Pinned {
			kept = append(kept, r)
			if budget > 0 {
				budget--
			}
		}
	}
	// Earliest-start unpinned claims fill the remaining budget; ties
	// break on job ID so truncation is deterministic.
	idx := make([]int, 0, len(rs))
	for i, r := range rs {
		if !r.Pinned {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := rs[idx[a]], rs[idx[b]]
		if ra.Start != rb.Start {
			return ra.Start < rb.Start
		}
		return ra.Job < rb.Job
	})
	for _, i := range idx {
		if budget == 0 {
			break
		}
		kept = append(kept, rs[i])
		budget--
	}
	return kept
}

func (l *Ledger) grow(r grid.ID) {
	for len(l.byRes) <= int(r) {
		l.byRes = append(l.byRes, nil)
	}
}

// insert adds e to its resource row keeping (start, owner, job) order.
func (l *Ledger) insert(r grid.ID, e entry) {
	l.grow(r)
	row := l.byRes[r]
	i := sort.Search(len(row), func(i int) bool {
		switch {
		case row[i].start != e.start:
			return row[i].start > e.start
		case row[i].owner != e.owner:
			return row[i].owner > e.owner
		default:
			return row[i].job > e.job
		}
	})
	row = append(row, entry{})
	copy(row[i+1:], row[i:])
	row[i] = e
	l.byRes[r] = row
	l.owners[e.owner]++
}

// removeWhere filters every row in place, dropping owner's entries for
// which match returns true (nil match drops them all).
func (l *Ledger) removeWhere(owner string, match func(e entry) bool) int {
	removed := 0
	for r := range l.byRes {
		row := l.byRes[r]
		w := 0
		for _, e := range row {
			if e.owner == owner && (match == nil || match(e)) {
				removed++
				continue
			}
			row[w] = e
			w++
		}
		l.byRes[r] = row[:w]
	}
	if removed > 0 {
		if n := l.owners[owner] - removed; n > 0 {
			l.owners[owner] = n
		} else {
			delete(l.owners, owner)
		}
	}
	return removed
}

// SetOwner replaces every reservation of owner with rs — the whole-plan
// publish on initial planning and on every adopted reschedule. This is
// where the per-tenant share cap bites: the publish is truncated (never
// the pinned claims) so the owner's tenant cannot exceed its share while
// other tenants hold reservations.
func (l *Ledger) SetOwner(owner string, rs []Reservation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removeWhere(owner, nil)
	for _, r := range l.capLocked(owner, rs) {
		l.insert(r.Resource, entry{owner: owner, job: r.Job, start: r.Start, finish: r.Finish, pinned: r.Pinned})
	}
}

// Update replaces owner's reservation for r.Job (wherever it currently
// sits — the job may have started on a different resource than planned)
// with the given interval.
func (l *Ledger) Update(owner string, r Reservation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removeWhere(owner, func(e entry) bool { return e.job == r.Job })
	l.insert(r.Resource, entry{owner: owner, job: r.Job, start: r.Start, finish: r.Finish, pinned: r.Pinned})
}

// ReleaseJob drops owner's reservation for job (a completed job's
// interval is history, not a claim). It reports whether an entry existed.
func (l *Ledger) ReleaseJob(owner string, job int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.removeWhere(owner, func(e entry) bool { return e.job == job }) > 0
}

// Release drops every reservation of owner — compute and transfer alike
// (workflow reached a terminal state) — and returns how many compute
// reservations were removed.
func (l *Ledger) Release(owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.tenantOf, owner)
	l.removeTWhere(owner, nil)
	return l.removeWhere(owner, nil)
}

// Count returns owner's live reservation count.
func (l *Ledger) Count(owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.owners[owner]
}

// Total returns the ledger-wide reservation count.
func (l *Ledger) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.owners {
		n += c
	}
	return n
}

// Owners returns a snapshot of per-owner reservation counts.
func (l *Ledger) Owners() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.owners))
	for o, c := range l.owners {
		out[o] = c
	}
	return out
}

// Owned is the serialisable form of one stored reservation: the
// Reservation plus its owning workflow, used by the daemon's durability
// layer and the recovery property tests.
type Owned struct {
	Owner    string  `json:"owner"`
	Job      int     `json:"job"`
	Resource grid.ID `json:"resource"`
	Start    float64 `json:"start"`
	Finish   float64 `json:"finish"`
	Pinned   bool    `json:"pinned,omitempty"`
}

// Export snapshots every reservation in deterministic order (resource,
// then the row's (start, owner, job) order). Import of the result into
// a fresh ledger reproduces the ledger exactly.
func (l *Ledger) Export() []Owned {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Owned
	for r, row := range l.byRes {
		for _, e := range row {
			out = append(out, Owned{
				Owner: e.owner, Job: e.job, Resource: grid.ID(r), Start: e.start, Finish: e.finish, Pinned: e.pinned,
			})
		}
	}
	return out
}

// Import installs the exported reservations into the ledger (which the
// caller normally keeps empty until then).
func (l *Ledger) Import(rs []Owned) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range rs {
		l.insert(r.Resource, entry{owner: r.Owner, job: r.Job, start: r.Start, finish: r.Finish, pinned: r.Pinned})
	}
}

// ownedBy returns owner's current reservations in deterministic
// (resource, then row) order.
func (l *Ledger) ownedBy(owner string) []Reservation {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Reservation
	for r, row := range l.byRes {
		for _, e := range row {
			if e.owner == owner {
				out = append(out, Reservation{Job: e.job, Resource: grid.ID(r), Start: e.start, Finish: e.finish, Pinned: e.pinned})
			}
		}
	}
	return out
}

// appendBusy appends every interval on r not owned by exclude to buf.
func (l *Ledger) appendBusy(r grid.ID, exclude string, buf []kernel.Busy) []kernel.Busy {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(r) >= len(l.byRes) {
		return buf
	}
	for _, e := range l.byRes[r] {
		if e.owner == exclude {
			continue
		}
		buf = append(buf, kernel.Busy{Start: e.start, Finish: e.finish})
	}
	return buf
}

// countOthers returns the number of reservations not owned by exclude.
func (l *Ledger) countOthers(exclude string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for o, c := range l.owners {
		if o != exclude {
			n += c
		}
	}
	return n
}

// View binds the ledger to one owning workflow: the kernel.Occupancy the
// owner's planner reads (every other owner's reservations are busy) and
// the write handle its tracker publishes through.
type View struct {
	l     *Ledger
	owner string
}

// View returns owner's view of the ledger.
func (l *Ledger) View(owner string) *View { return &View{l: l, owner: owner} }

// Owner returns the workflow identity the view is bound to.
func (v *View) Owner() string { return v.owner }

// AppendBusy implements kernel.Occupancy: the foreign reservations on r.
func (v *View) AppendBusy(r grid.ID, buf []kernel.Busy) []kernel.Busy {
	return v.l.appendBusy(r, v.owner, buf)
}

// ForeignCount returns how many reservations other owners currently hold.
func (v *View) ForeignCount() int { return v.l.countOthers(v.owner) }

// Own returns the owner's current reservations as stored in the ledger —
// the authoritative set, including per-job narrowings since the last
// whole-plan publish. The durability layer persists these so a restored
// workflow republishes exactly what it held.
func (v *View) Own() []Reservation { return v.l.ownedBy(v.owner) }

// Publish replaces the owner's whole reservation set.
func (v *View) Publish(rs []Reservation) { v.l.SetOwner(v.owner, rs) }

// Update replaces the owner's reservation for one job.
func (v *View) Update(r Reservation) { v.l.Update(v.owner, r) }

// ReleaseJob drops the owner's reservation for one job.
func (v *View) ReleaseJob(job int) bool { return v.l.ReleaseJob(v.owner, job) }

// Release drops every reservation of the owner.
func (v *View) Release() int { return v.l.Release(v.owner) }
