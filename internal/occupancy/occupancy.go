// Package occupancy is the reservation ledger behind shard-owned shared
// grids: the record of every placed job's (resource, start, finish)
// compute interval across the live workflows attached to one grid. The
// paper frames adaptive rescheduling as a response to a *shared* grid —
// resources slow down and fill up because other tenants are using them —
// and this ledger is what makes that contention endogenous: each
// workflow's planner sees every other workflow's reservations as busy
// intervals during slot search (kernel.Occupancy), so concurrent
// workflows on one grid plan around each other instead of against
// private pool snapshots.
//
// Ownership and lifecycle: a Ledger belongs to one shared grid, which
// lives on one shard. Every mutation happens on that shard's single
// worker goroutine (the same discipline the kernels follow), but status
// endpoints and metrics readers aggregate ledgers from other goroutines,
// so the ledger is internally synchronised. Reads on the planning hot
// path (AppendBusy) take the one uncontended mutex and copy into a
// caller-owned buffer — no allocation in steady state.
//
// An owner's reservations are replaced wholesale when its plan changes
// (SetOwner), narrowed job by job as execution progresses (Update on
// start, ReleaseJob on finish), and dropped atomically when the workflow
// reaches any terminal state (Release). A leaked reservation — an entry
// surviving its owner — would silently shrink the grid for every other
// tenant forever, so Release returns the count removed and Count/Total
// exist for tests and metrics to prove the ledger drains to zero.
package occupancy

import (
	"sort"
	"sync"

	"aheft/internal/grid"
	"aheft/internal/kernel"
)

// Reservation is one job's claimed compute interval on a resource.
type Reservation struct {
	Job      int
	Resource grid.ID
	Start    float64
	Finish   float64
}

// entry is a stored reservation tagged with its owner.
type entry struct {
	owner         string
	job           int
	start, finish float64
}

// Ledger records the reservations of every workflow attached to one
// shared grid, indexed by resource for the slot-search read path.
type Ledger struct {
	mu     sync.Mutex
	byRes  [][]entry      // per resource, sorted by (start, owner, job)
	owners map[string]int // owner -> live reservation count
}

// NewLedger returns an empty ledger sized for resHint resources (it grows
// on demand if reservations name higher IDs).
func NewLedger(resHint int) *Ledger {
	if resHint < 0 {
		resHint = 0
	}
	return &Ledger{
		byRes:  make([][]entry, resHint),
		owners: make(map[string]int),
	}
}

func (l *Ledger) grow(r grid.ID) {
	for len(l.byRes) <= int(r) {
		l.byRes = append(l.byRes, nil)
	}
}

// insert adds e to its resource row keeping (start, owner, job) order.
func (l *Ledger) insert(r grid.ID, e entry) {
	l.grow(r)
	row := l.byRes[r]
	i := sort.Search(len(row), func(i int) bool {
		switch {
		case row[i].start != e.start:
			return row[i].start > e.start
		case row[i].owner != e.owner:
			return row[i].owner > e.owner
		default:
			return row[i].job > e.job
		}
	})
	row = append(row, entry{})
	copy(row[i+1:], row[i:])
	row[i] = e
	l.byRes[r] = row
	l.owners[e.owner]++
}

// removeWhere filters every row in place, dropping owner's entries for
// which match returns true (nil match drops them all).
func (l *Ledger) removeWhere(owner string, match func(e entry) bool) int {
	removed := 0
	for r := range l.byRes {
		row := l.byRes[r]
		w := 0
		for _, e := range row {
			if e.owner == owner && (match == nil || match(e)) {
				removed++
				continue
			}
			row[w] = e
			w++
		}
		l.byRes[r] = row[:w]
	}
	if removed > 0 {
		if n := l.owners[owner] - removed; n > 0 {
			l.owners[owner] = n
		} else {
			delete(l.owners, owner)
		}
	}
	return removed
}

// SetOwner replaces every reservation of owner with rs — the whole-plan
// publish on initial planning and on every adopted reschedule.
func (l *Ledger) SetOwner(owner string, rs []Reservation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removeWhere(owner, nil)
	for _, r := range rs {
		l.insert(r.Resource, entry{owner: owner, job: r.Job, start: r.Start, finish: r.Finish})
	}
}

// Update replaces owner's reservation for r.Job (wherever it currently
// sits — the job may have started on a different resource than planned)
// with the given interval.
func (l *Ledger) Update(owner string, r Reservation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removeWhere(owner, func(e entry) bool { return e.job == r.Job })
	l.insert(r.Resource, entry{owner: owner, job: r.Job, start: r.Start, finish: r.Finish})
}

// ReleaseJob drops owner's reservation for job (a completed job's
// interval is history, not a claim). It reports whether an entry existed.
func (l *Ledger) ReleaseJob(owner string, job int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.removeWhere(owner, func(e entry) bool { return e.job == job }) > 0
}

// Release drops every reservation of owner (workflow reached a terminal
// state) and returns how many were removed.
func (l *Ledger) Release(owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.removeWhere(owner, nil)
}

// Count returns owner's live reservation count.
func (l *Ledger) Count(owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.owners[owner]
}

// Total returns the ledger-wide reservation count.
func (l *Ledger) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.owners {
		n += c
	}
	return n
}

// Owners returns a snapshot of per-owner reservation counts.
func (l *Ledger) Owners() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.owners))
	for o, c := range l.owners {
		out[o] = c
	}
	return out
}

// Owned is the serialisable form of one stored reservation: the
// Reservation plus its owning workflow, used by the daemon's durability
// layer and the recovery property tests.
type Owned struct {
	Owner    string  `json:"owner"`
	Job      int     `json:"job"`
	Resource grid.ID `json:"resource"`
	Start    float64 `json:"start"`
	Finish   float64 `json:"finish"`
}

// Export snapshots every reservation in deterministic order (resource,
// then the row's (start, owner, job) order). Import of the result into
// a fresh ledger reproduces the ledger exactly.
func (l *Ledger) Export() []Owned {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Owned
	for r, row := range l.byRes {
		for _, e := range row {
			out = append(out, Owned{
				Owner: e.owner, Job: e.job, Resource: grid.ID(r), Start: e.start, Finish: e.finish,
			})
		}
	}
	return out
}

// Import installs the exported reservations into the ledger (which the
// caller normally keeps empty until then).
func (l *Ledger) Import(rs []Owned) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range rs {
		l.insert(r.Resource, entry{owner: r.Owner, job: r.Job, start: r.Start, finish: r.Finish})
	}
}

// ownedBy returns owner's current reservations in deterministic
// (resource, then row) order.
func (l *Ledger) ownedBy(owner string) []Reservation {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Reservation
	for r, row := range l.byRes {
		for _, e := range row {
			if e.owner == owner {
				out = append(out, Reservation{Job: e.job, Resource: grid.ID(r), Start: e.start, Finish: e.finish})
			}
		}
	}
	return out
}

// appendBusy appends every interval on r not owned by exclude to buf.
func (l *Ledger) appendBusy(r grid.ID, exclude string, buf []kernel.Busy) []kernel.Busy {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(r) >= len(l.byRes) {
		return buf
	}
	for _, e := range l.byRes[r] {
		if e.owner == exclude {
			continue
		}
		buf = append(buf, kernel.Busy{Start: e.start, Finish: e.finish})
	}
	return buf
}

// countOthers returns the number of reservations not owned by exclude.
func (l *Ledger) countOthers(exclude string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for o, c := range l.owners {
		if o != exclude {
			n += c
		}
	}
	return n
}

// View binds the ledger to one owning workflow: the kernel.Occupancy the
// owner's planner reads (every other owner's reservations are busy) and
// the write handle its tracker publishes through.
type View struct {
	l     *Ledger
	owner string
}

// View returns owner's view of the ledger.
func (l *Ledger) View(owner string) *View { return &View{l: l, owner: owner} }

// Owner returns the workflow identity the view is bound to.
func (v *View) Owner() string { return v.owner }

// AppendBusy implements kernel.Occupancy: the foreign reservations on r.
func (v *View) AppendBusy(r grid.ID, buf []kernel.Busy) []kernel.Busy {
	return v.l.appendBusy(r, v.owner, buf)
}

// ForeignCount returns how many reservations other owners currently hold.
func (v *View) ForeignCount() int { return v.l.countOthers(v.owner) }

// Own returns the owner's current reservations as stored in the ledger —
// the authoritative set, including per-job narrowings since the last
// whole-plan publish. The durability layer persists these so a restored
// workflow republishes exactly what it held.
func (v *View) Own() []Reservation { return v.l.ownedBy(v.owner) }

// Publish replaces the owner's whole reservation set.
func (v *View) Publish(rs []Reservation) { v.l.SetOwner(v.owner, rs) }

// Update replaces the owner's reservation for one job.
func (v *View) Update(r Reservation) { v.l.Update(v.owner, r) }

// ReleaseJob drops the owner's reservation for one job.
func (v *View) ReleaseJob(job int) bool { return v.l.ReleaseJob(v.owner, job) }

// Release drops every reservation of the owner.
func (v *View) Release() int { return v.l.Release(v.owner) }
