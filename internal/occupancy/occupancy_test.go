package occupancy

import (
	"sync"
	"testing"

	"aheft/internal/grid"
	"aheft/internal/kernel"
)

func res(rs ...Reservation) []Reservation { return rs }

func TestSetOwnerReplacesWholesale(t *testing.T) {
	l := NewLedger(4)
	l.SetOwner("a", res(
		Reservation{Job: 0, Resource: 0, Start: 0, Finish: 10},
		Reservation{Job: 1, Resource: 1, Start: 5, Finish: 15},
	))
	if got := l.Count("a"); got != 2 {
		t.Fatalf("count after publish: %d", got)
	}
	l.SetOwner("a", res(Reservation{Job: 2, Resource: 0, Start: 20, Finish: 30}))
	if got := l.Count("a"); got != 1 {
		t.Fatalf("count after replace: %d", got)
	}
	busy := l.View("b").AppendBusy(0, nil)
	if len(busy) != 1 || busy[0].Start != 20 || busy[0].Finish != 30 {
		t.Fatalf("row 0 after replace: %+v", busy)
	}
	if busy := l.View("b").AppendBusy(1, nil); len(busy) != 0 {
		t.Fatalf("row 1 should be empty after replace: %+v", busy)
	}
}

func TestViewExcludesOwnReservations(t *testing.T) {
	l := NewLedger(2)
	l.SetOwner("a", res(Reservation{Job: 0, Resource: 0, Start: 0, Finish: 10}))
	l.SetOwner("b", res(Reservation{Job: 0, Resource: 0, Start: 10, Finish: 20}))
	a := l.View("a").AppendBusy(0, nil)
	if len(a) != 1 || a[0].Start != 10 {
		t.Fatalf("a's view should see only b: %+v", a)
	}
	b := l.View("b").AppendBusy(0, nil)
	if len(b) != 1 || b[0].Start != 0 {
		t.Fatalf("b's view should see only a: %+v", b)
	}
	if got := l.View("a").ForeignCount(); got != 1 {
		t.Fatalf("a foreign count: %d", got)
	}
}

func TestAppendBusySortedByStart(t *testing.T) {
	l := NewLedger(1)
	l.SetOwner("a", res(
		Reservation{Job: 1, Resource: 0, Start: 30, Finish: 40},
		Reservation{Job: 0, Resource: 0, Start: 5, Finish: 10},
	))
	l.SetOwner("b", res(Reservation{Job: 0, Resource: 0, Start: 12, Finish: 25}))
	busy := l.View("c").AppendBusy(0, nil)
	if len(busy) != 3 {
		t.Fatalf("want 3 intervals, got %+v", busy)
	}
	for i := 1; i < len(busy); i++ {
		if busy[i].Start < busy[i-1].Start {
			t.Fatalf("not start-sorted: %+v", busy)
		}
	}
}

func TestUpdateMovesJobAcrossResources(t *testing.T) {
	l := NewLedger(2)
	v := l.View("a")
	v.Publish(res(Reservation{Job: 7, Resource: 0, Start: 0, Finish: 10}))
	// The job actually started on resource 1 (the plan moved underneath
	// the enactor); the start report relocates the claim.
	v.Update(Reservation{Job: 7, Resource: 1, Start: 2, Finish: 12})
	if got := l.Count("a"); got != 1 {
		t.Fatalf("update must replace, not add: count %d", got)
	}
	if busy := l.View("x").AppendBusy(0, nil); len(busy) != 0 {
		t.Fatalf("stale claim left on resource 0: %+v", busy)
	}
	if busy := l.View("x").AppendBusy(1, nil); len(busy) != 1 || busy[0].Finish != 12 {
		t.Fatalf("moved claim missing on resource 1: %+v", busy)
	}
}

func TestReleaseJobAndRelease(t *testing.T) {
	l := NewLedger(2)
	v := l.View("a")
	v.Publish(res(
		Reservation{Job: 0, Resource: 0, Start: 0, Finish: 10},
		Reservation{Job: 1, Resource: 1, Start: 0, Finish: 10},
		Reservation{Job: 2, Resource: 1, Start: 10, Finish: 20},
	))
	if !v.ReleaseJob(1) {
		t.Fatal("ReleaseJob(1) found nothing")
	}
	if v.ReleaseJob(1) {
		t.Fatal("double release claimed to find an entry")
	}
	if got := l.Count("a"); got != 2 {
		t.Fatalf("count after job release: %d", got)
	}
	if got := v.Release(); got != 2 {
		t.Fatalf("Release removed %d, want 2", got)
	}
	if got, total := l.Count("a"), l.Total(); got != 0 || total != 0 {
		t.Fatalf("leaked reservations: count=%d total=%d owners=%v", got, total, l.Owners())
	}
}

func TestLedgerGrowsBeyondHint(t *testing.T) {
	l := NewLedger(0)
	l.SetOwner("a", res(Reservation{Job: 0, Resource: 9, Start: 1, Finish: 2}))
	if busy := l.View("b").AppendBusy(9, nil); len(busy) != 1 {
		t.Fatalf("row 9: %+v", busy)
	}
	if busy := l.View("b").AppendBusy(99, nil); len(busy) != 0 {
		t.Fatalf("row 99 out of range must read empty: %+v", busy)
	}
}

// TestLedgerConcurrentReaders races status-style readers against the
// owning writer — the ledger is mutated on one shard goroutine but read
// from metrics/status handlers.
func TestLedgerConcurrentReaders(t *testing.T) {
	l := NewLedger(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []kernel.Busy
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = l.View("reader").AppendBusy(grid.ID(1), buf[:0])
				l.Total()
				l.Owners()
			}
		}()
	}
	v := l.View("writer")
	for i := 0; i < 2000; i++ {
		v.Publish(res(
			Reservation{Job: 0, Resource: 1, Start: float64(i), Finish: float64(i + 1)},
			Reservation{Job: 1, Resource: 2, Start: float64(i), Finish: float64(i + 2)},
		))
		v.Update(Reservation{Job: 0, Resource: 3, Start: float64(i), Finish: float64(i + 1)})
		v.ReleaseJob(1)
		v.Release()
	}
	close(stop)
	wg.Wait()
	if l.Total() != 0 {
		t.Fatalf("leaked: %v", l.Owners())
	}
}
