package occupancy

import (
	"sort"

	"aheft/internal/kernel"
)

// Transfer is one planned file staging's claim on a named capacity
// channel (a resource uplink/downlink or a shared link; the channel names
// are data.Model's: "up:<res>", "down:<res>", "link:<name>"). A staging
// that crosses several channels publishes one Transfer per channel.
// Transfer reservations live beside the compute reservations under the
// same ownership discipline: replaced wholesale on plan adoption,
// released per job as execution passes them, and dropped atomically with
// the owner's compute claims on every terminal path — a leaked transfer
// reservation would silently narrow a link for every other tenant
// forever, so TransferCount/TransferTotal exist for the leak tests and
// metrics to prove the ledger drains to zero.
type Transfer struct {
	Job     int
	File    string
	Channel string
	Start   float64
	Finish  float64
}

// tentry is a stored transfer reservation tagged with its owner.
type tentry struct {
	owner         string
	job           int
	file          string
	start, finish float64
}

// ensureCh lazily allocates the transfer maps; pre-data ledgers never pay
// for them.
func (l *Ledger) ensureCh() {
	if l.byCh == nil {
		l.byCh = make(map[string][]tentry)
		l.towners = make(map[string]int)
	}
}

// insertT adds e to its channel row keeping (start, owner, job, file)
// order.
func (l *Ledger) insertT(ch string, e tentry) {
	l.ensureCh()
	row := l.byCh[ch]
	i := sort.Search(len(row), func(i int) bool {
		switch {
		case row[i].start != e.start:
			return row[i].start > e.start
		case row[i].owner != e.owner:
			return row[i].owner > e.owner
		case row[i].job != e.job:
			return row[i].job > e.job
		default:
			return row[i].file > e.file
		}
	})
	row = append(row, tentry{})
	copy(row[i+1:], row[i:])
	row[i] = e
	l.byCh[ch] = row
	l.towners[e.owner]++
}

// removeTWhere filters every channel row in place, dropping owner's
// transfer entries for which match returns true (nil match drops all).
func (l *Ledger) removeTWhere(owner string, match func(e tentry) bool) int {
	removed := 0
	for ch, row := range l.byCh {
		w := 0
		for _, e := range row {
			if e.owner == owner && (match == nil || match(e)) {
				removed++
				continue
			}
			row[w] = e
			w++
		}
		if w == 0 {
			delete(l.byCh, ch)
		} else {
			l.byCh[ch] = row[:w]
		}
	}
	if removed > 0 {
		if n := l.towners[owner] - removed; n > 0 {
			l.towners[owner] = n
		} else {
			delete(l.towners, owner)
		}
	}
	return removed
}

// SetOwnerTransfers replaces every transfer reservation of owner with ts
// — the whole-plan publish mirroring SetOwner. The per-tenant share cap
// deliberately does not apply: transfer claims always back a published
// (already capped) compute plan.
func (l *Ledger) SetOwnerTransfers(owner string, ts []Transfer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removeTWhere(owner, nil)
	for _, t := range ts {
		l.insertT(t.Channel, tentry{owner: owner, job: t.Job, file: t.File, start: t.Start, finish: t.Finish})
	}
}

// ReleaseJobTransfers drops owner's transfer reservations staged for job
// (its inputs are materialized once it starts) and returns how many were
// removed.
func (l *Ledger) ReleaseJobTransfers(owner string, job int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.removeTWhere(owner, func(e tentry) bool { return e.job == job })
}

// TransferCount returns owner's live transfer-reservation count.
func (l *Ledger) TransferCount(owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.towners[owner]
}

// TransferTotal returns the ledger-wide transfer-reservation count.
func (l *Ledger) TransferTotal() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.towners {
		n += c
	}
	return n
}

// Channels returns a snapshot of per-channel transfer-reservation counts
// in channel-name order — the GridStatus link-occupancy view.
func (l *Ledger) Channels() (names []string, counts []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for ch := range l.byCh {
		names = append(names, ch)
	}
	sort.Strings(names)
	counts = make([]int, len(names))
	for i, ch := range names {
		counts[i] = len(l.byCh[ch])
	}
	return names, counts
}

// ownedTransfers returns owner's transfer reservations in deterministic
// (channel, then row) order, for the durability layer's republish path.
func (l *Ledger) ownedTransfers(owner string) []Transfer {
	l.mu.Lock()
	defer l.mu.Unlock()
	chs := make([]string, 0, len(l.byCh))
	for ch := range l.byCh {
		chs = append(chs, ch)
	}
	sort.Strings(chs)
	var out []Transfer
	for _, ch := range chs {
		for _, e := range l.byCh[ch] {
			if e.owner == owner {
				out = append(out, Transfer{Job: e.job, File: e.file, Channel: ch, Start: e.start, Finish: e.finish})
			}
		}
	}
	return out
}

// appendLinkBusy appends every interval on channel ch not owned by
// exclude to buf.
func (l *Ledger) appendLinkBusy(ch, exclude string, buf []kernel.Busy) []kernel.Busy {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.byCh[ch] {
		if e.owner == exclude {
			continue
		}
		buf = append(buf, kernel.Busy{Start: e.start, Finish: e.finish})
	}
	return buf
}

// AppendLinkBusy implements kernel.LinkOccupancy: the foreign transfer
// reservations on the named channel.
func (v *View) AppendLinkBusy(channel string, buf []kernel.Busy) []kernel.Busy {
	return v.l.appendLinkBusy(channel, v.owner, buf)
}

// PublishTransfers replaces the owner's whole transfer-reservation set.
func (v *View) PublishTransfers(ts []Transfer) { v.l.SetOwnerTransfers(v.owner, ts) }

// ReleaseJobTransfers drops the owner's transfer reservations for one job.
func (v *View) ReleaseJobTransfers(job int) int { return v.l.ReleaseJobTransfers(v.owner, job) }

// OwnTransfers returns the owner's current transfer reservations.
func (v *View) OwnTransfers() []Transfer { return v.l.ownedTransfers(v.owner) }

// TransferCount returns the owner's live transfer-reservation count.
func (v *View) TransferCount() int { return v.l.TransferCount(v.owner) }
