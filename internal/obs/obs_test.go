package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilTracerIsNoOp pins the nil-safety contract every instrumentation
// site relies on: a nil *Tracer (tracing disabled) and a nil *Active
// must absorb the full API without panicking or allocating state.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	a := tr.Start(StageIntake, "wf-1")
	if a != nil {
		t.Fatalf("Start on nil tracer returned %v", a)
	}
	if id := a.End(); id != 0 {
		t.Fatalf("End on nil Active returned %d", id)
	}
	if id := a.Fail(nil); id != 0 {
		t.Fatalf("Fail on nil Active returned %d", id)
	}
	if id := tr.Emit(Span{Stage: StageEvaluate}, time.Millisecond); id != 0 {
		t.Fatalf("Emit on nil tracer returned %d", id)
	}
	if s := tr.Spans("wf-1"); s != nil {
		t.Fatalf("Spans on nil tracer returned %v", s)
	}
	if id := tr.LastSpan("wf-1", StageIntake); id != 0 {
		t.Fatalf("LastSpan on nil tracer returned %d", id)
	}
	tr.Release("wf-1")
	if st := tr.StageSummary(); st != nil {
		t.Fatalf("StageSummary on nil tracer returned %v", st)
	}
	if spans, dropped := tr.Totals(); spans != 0 || dropped != 0 {
		t.Fatalf("Totals on nil tracer returned %d/%d", spans, dropped)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close on nil tracer: %v", err)
	}
}

// TestSpanFilingAndLinks walks one workflow through Start/End and Emit
// and checks retention order, parent/link threading, stage windows and
// totals.
func TestSpanFilingAndLinks(t *testing.T) {
	tr := New(Options{})

	in := tr.Start(StageIntake, "wf-1")
	in.Span.Tenant = "acme"
	in.Span.Shard = 3
	intakeID := in.End()
	if intakeID == 0 {
		t.Fatal("intake span got ID 0")
	}

	evalID := tr.Emit(Span{
		Stage: StageEvaluate, Workflow: "wf-1", Shard: 3,
		Parent: intakeID, Link: 77, LinkWorkflow: "wf-other",
		Trigger: "contention", Adopted: true,
	}, 2*time.Millisecond)
	if evalID <= intakeID {
		t.Fatalf("span IDs not increasing: intake %d, evaluate %d", intakeID, evalID)
	}

	spans := tr.Spans("wf-1")
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2: %+v", len(spans), spans)
	}
	if spans[0].Stage != StageIntake || spans[0].Tenant != "acme" || spans[0].Shard != 3 {
		t.Fatalf("intake span: %+v", spans[0])
	}
	if spans[0].End < spans[0].Start {
		t.Fatalf("intake span ends before it starts: %+v", spans[0])
	}
	ev := spans[1]
	if ev.Parent != intakeID || ev.Link != 77 || ev.LinkWorkflow != "wf-other" || !ev.Adopted {
		t.Fatalf("evaluate span links: %+v", ev)
	}
	// Emit back-dates Start by the measured elapsed.
	if got := ev.End - ev.Start; got != (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("emitted span duration %dns, want 2ms", got)
	}

	if id := tr.LastSpan("wf-1", StageEvaluate); id != evalID {
		t.Fatalf("LastSpan(evaluate) = %d, want %d", id, evalID)
	}
	sum := tr.StageSummary()
	if sum[StageIntake].Count != 1 || sum[StageEvaluate].Count != 1 {
		t.Fatalf("stage summary: %+v", sum)
	}
	if p50 := sum[StageEvaluate].P50; p50 < 1.9 || p50 > 2.1 {
		t.Fatalf("evaluate p50 %.3fms, want ~2ms", p50)
	}
	if spans, dropped := tr.Totals(); spans != 2 || dropped != 0 {
		t.Fatalf("totals %d/%d, want 2/0", spans, dropped)
	}

	tr.Release("wf-1")
	if s := tr.Spans("wf-1"); s != nil {
		t.Fatalf("spans survived Release: %v", s)
	}
}

// TestFailRecordsError pins that Fail completes the span with the error
// attribute set.
func TestFailRecordsError(t *testing.T) {
	tr := New(Options{})
	a := tr.Start(StageIntake, "wf-err")
	a.Fail(errTest{})
	spans := tr.Spans("wf-err")
	if len(spans) != 1 || spans[0].Err != "boom" {
		t.Fatalf("failed span: %+v", spans)
	}
}

type errTest struct{}

func (errTest) Error() string { return "boom" }

// TestPerWorkflowCap pins the retention bound: spans past the cap still
// roll into the stage windows and totals but are not retained, and the
// drop is counted.
func TestPerWorkflowCap(t *testing.T) {
	tr := New(Options{MaxSpansPerWorkflow: 2})
	for i := 0; i < 5; i++ {
		tr.Emit(Span{Stage: StageEvaluate, Workflow: "wf-cap"}, 0)
	}
	if got := len(tr.Spans("wf-cap")); got != 2 {
		t.Fatalf("retained %d spans, want cap 2", got)
	}
	spans, dropped := tr.Totals()
	if spans != 5 || dropped != 3 {
		t.Fatalf("totals %d/%d, want 5/3", spans, dropped)
	}
	if sum := tr.StageSummary(); sum[StageEvaluate].Count != 5 {
		t.Fatalf("stage window missed dropped spans: %+v", sum)
	}
}

// TestOTLPSink checks the file exporter's shape: one JSON object per
// line with OTLP field names, the workflow-derived traceId, hex span
// IDs, attributes, and a cross-trace link pointing into the linked
// workflow's trace.
func TestOTLPSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Sink: &buf})

	a := tr.Start(StagePlan, "wf-sink")
	a.Span.Shard = 1
	planID := a.End()
	tr.Emit(Span{
		Stage: StageEvaluate, Workflow: "wf-sink", Parent: planID,
		Link: planID, LinkWorkflow: "wf-releasing",
		Trigger: "contention", Cone: 4, Fallback: "cone", Adopted: true, Generation: 2,
	}, time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	type otlp struct {
		TraceID      string `json:"traceId"`
		SpanID       string `json:"spanId"`
		ParentSpanID string `json:"parentSpanId"`
		Name         string `json:"name"`
		StartNano    string `json:"startTimeUnixNano"`
		EndNano      string `json:"endTimeUnixNano"`
		Attributes   []struct {
			Key   string `json:"key"`
			Value struct {
				StringValue string `json:"stringValue"`
				IntValue    string `json:"intValue"`
				BoolValue   bool   `json:"boolValue"`
			} `json:"value"`
		} `json:"attributes"`
		Links []struct {
			TraceID string `json:"traceId"`
			SpanID  string `json:"spanId"`
		} `json:"links"`
	}
	var plan, eval otlp
	if err := json.Unmarshal([]byte(lines[0]), &plan); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &eval); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	want := TraceID("wf-sink")
	if len(want) != 32 {
		t.Fatalf("TraceID length %d, want 32 hex chars", len(want))
	}
	if plan.TraceID != want || eval.TraceID != want {
		t.Fatalf("traceIds %q/%q, want %q", plan.TraceID, eval.TraceID, want)
	}
	if plan.Name != StagePlan || eval.Name != StageEvaluate {
		t.Fatalf("names %q/%q", plan.Name, eval.Name)
	}
	if eval.ParentSpanID != plan.SpanID {
		t.Fatalf("evaluate parent %q, plan span %q", eval.ParentSpanID, plan.SpanID)
	}
	if plan.StartNano == "" || plan.EndNano == "" {
		t.Fatalf("plan timestamps missing: %+v", plan)
	}
	attrs := map[string]string{}
	adopted := false
	for _, kv := range eval.Attributes {
		switch {
		case kv.Value.StringValue != "":
			attrs[kv.Key] = kv.Value.StringValue
		case kv.Value.IntValue != "":
			attrs[kv.Key] = kv.Value.IntValue
		case kv.Value.BoolValue:
			adopted = adopted || kv.Key == "adopted"
		}
	}
	if attrs["trigger"] != "contention" || attrs["cone"] != "4" || attrs["fallback"] != "cone" ||
		attrs["generation"] != "2" || !adopted {
		t.Fatalf("evaluate attributes: %v adopted=%v", attrs, adopted)
	}
	if len(eval.Links) != 1 || eval.Links[0].TraceID != TraceID("wf-releasing") || eval.Links[0].SpanID != plan.SpanID {
		t.Fatalf("cross-trace link: %+v", eval.Links)
	}
}
