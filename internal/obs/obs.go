// Package obs is the daemon's in-process observability layer: a
// lightweight causal span model instrumented across the full decision
// path (intake → shard enqueue → plan → report ingest → reschedule
// evaluation → adoption → enactment) plus the per-stage latency rollups
// /metrics exposes.
//
// A Span is cheap on purpose: a fixed struct, an atomic ID, two
// monotonic clock readings, and one short critical section to file it —
// no interning, no context plumbing, no sampling machinery. Spans are
// linked three ways:
//
//   - Parent: intra-workflow structure (an evaluate span's parent is the
//     report-ingest span whose events triggered it);
//   - Link: causal cross-workflow edges (a contention-trigger evaluate
//     span links to the *releasing* workflow's finish-report span — the
//     span of the batch that freed the capacity);
//   - Workflow/Tenant/Grid attributes for filtering.
//
// Completed spans are retained per workflow (bounded, evicted with the
// workflow record) for GET /v1/workflows/{id}/trace, rolled into
// per-stage latency windows for /metrics, and — when a sink is
// configured — streamed as OTLP-shaped JSON lines (one span object per
// line using OTLP field names: traceId, spanId, parentSpanId, name,
// startTimeUnixNano, endTimeUnixNano, attributes, links) so standard
// tooling can ingest the file without a custom parser.
//
// Relationship to internal/trace: that package is the *offline*,
// executor-side collector — its events carry the simulated scheduling
// clock of one analytic run. This package is the daemon side on the
// wall clock. trace.Collector.Spans bridges the two shapes for the
// shared fact (rescheduling evaluations); see that method for the
// boundary contract.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aheft/internal/stats"
)

// Stage names instrumented across the daemon's decision path, in
// causal order.
const (
	// StageIntake covers HTTP submission handling: request arrival to
	// accept (enqueue) or reject.
	StageIntake = "intake"
	// StageQueue covers the shard queue residency: accepted enqueue to
	// the worker picking the workflow up.
	StageQueue = "queue"
	// StagePlan covers initial planning: the analytic engine's full run,
	// or a live workflow's first schedule.
	StagePlan = "plan"
	// StageIngest covers one report batch folding into a live run
	// (history feed, variance judgement, triggered evaluations).
	StageIngest = "ingest"
	// StageEvaluate covers one rescheduling evaluation (delta or full
	// path; the trigger, cone and fallback reason ride as attributes).
	StageEvaluate = "evaluate"
	// StageAdopt marks an adopted reschedule bumping the plan
	// generation.
	StageAdopt = "adopt"
	// StageEnact marks a plan generation being handed to the enactor
	// (initial GET …/plan or the report-ack piggyback).
	StageEnact = "enact"
)

// Span is one completed operation on the decision path. Start/End are
// wall-clock Unix nanoseconds; the duration between them is derived
// from the monotonic clock (End = Start + monotonic elapsed), so span
// latencies are immune to wall-clock steps.
type Span struct {
	ID     uint64 `json:"span_id"`
	Parent uint64 `json:"parent_id,omitempty"`
	// Link is a causal cross-workflow edge: the span whose effect
	// triggered this one (contention evaluate → releasing finish).
	// LinkWorkflow names the workflow that span belongs to.
	Link         uint64 `json:"link_id,omitempty"`
	LinkWorkflow string `json:"link_workflow,omitempty"`
	Stage        string `json:"stage"`
	Workflow     string `json:"workflow,omitempty"`
	Tenant       string `json:"tenant,omitempty"`
	Grid         string `json:"grid,omitempty"`
	Shard        int    `json:"shard"`
	Start        int64  `json:"start_unix_ns"`
	End          int64  `json:"end_unix_ns"`

	// Decision attributes (evaluate/adopt spans).
	Trigger    string `json:"trigger,omitempty"`
	Path       string `json:"path,omitempty"`
	Cone       int    `json:"cone,omitempty"`
	Fallback   string `json:"fallback,omitempty"`
	Adopted    bool   `json:"adopted,omitempty"`
	Generation int    `json:"generation,omitempty"`
	Err        string `json:"error,omitempty"`
}

// Options tunes a Tracer.
type Options struct {
	// MaxSpansPerWorkflow bounds the retained span log per workflow;
	// excess spans still roll into the stage windows and the sink but
	// are not retained for the trace endpoint (counted in Dropped).
	// 0 means 512.
	MaxSpansPerWorkflow int
	// Sink, when non-nil, receives every completed span as one
	// OTLP-shaped JSON line. Writes are buffered; Close flushes.
	Sink io.Writer
}

// Tracer collects spans. A nil *Tracer is a valid no-op: Start and Emit
// on nil return nil/0, so call sites pay one branch when tracing is
// off.
type Tracer struct {
	ids     atomic.Uint64
	spans   atomic.Uint64 // completed spans, total
	dropped atomic.Uint64 // spans not retained (per-workflow cap)
	maxPer  int

	mu  sync.Mutex
	wfs map[string]*wfSpans

	stageMu sync.Mutex
	stages  map[string]*stageWindow

	sinkMu sync.Mutex
	sink   *bufio.Writer
}

type wfSpans struct {
	spans []Span
	last  map[string]uint64 // latest span ID per stage, for causal links
}

// stageWindow is a bounded latency ring per stage (mirrors the server's
// metric windows; bounded so /metrics stays O(1) over daemon lifetime).
type stageWindow struct {
	buf   []float64
	next  int
	total uint64
}

const stageWindowCap = 4096

// New builds a tracer.
func New(opts Options) *Tracer {
	t := &Tracer{
		maxPer: opts.MaxSpansPerWorkflow,
		wfs:    make(map[string]*wfSpans),
		stages: make(map[string]*stageWindow),
	}
	if t.maxPer <= 0 {
		t.maxPer = 512
	}
	if opts.Sink != nil {
		t.sink = bufio.NewWriterSize(opts.Sink, 64<<10)
	}
	return t
}

// Active is an in-flight span: Start fills identity and the start
// timestamp; the caller sets attributes on Span and calls End. An
// Active may cross goroutines (the queue span starts on the intake
// handler and ends on the shard worker) as long as End happens-after
// the attribute writes.
type Active struct {
	t    *Tracer
	at   time.Time
	Span Span
}

// Start opens a span. On a nil tracer it returns nil (and End on a nil
// Active is a no-op), so instrumentation sites need no enabled-check.
func (t *Tracer) Start(stage, workflow string) *Active {
	if t == nil {
		return nil
	}
	a := &Active{t: t, at: time.Now()}
	a.Span.ID = t.ids.Add(1)
	a.Span.Stage = stage
	a.Span.Workflow = workflow
	a.Span.Start = a.at.UnixNano()
	return a
}

// End completes the span (monotonic duration) and files it, returning
// its ID for use as a parent or causal link.
func (a *Active) End() uint64 {
	if a == nil {
		return 0
	}
	d := time.Since(a.at)
	a.Span.End = a.Span.Start + d.Nanoseconds()
	a.t.record(a.Span, d)
	return a.Span.ID
}

// Fail records err on the span and completes it.
func (a *Active) Fail(err error) uint64 {
	if a == nil {
		return 0
	}
	if err != nil {
		a.Span.Err = err.Error()
	}
	return a.End()
}

// Emit files an already-elapsed span retroactively: the ID is assigned
// here, End is stamped now, and Start is back-dated by elapsed. Used
// for evaluations whose latency the kernel already measured — the span
// costs nothing on the measured path itself.
func (t *Tracer) Emit(s Span, elapsed time.Duration) uint64 {
	if t == nil {
		return 0
	}
	if elapsed < 0 {
		elapsed = 0
	}
	s.ID = t.ids.Add(1)
	s.End = time.Now().UnixNano()
	s.Start = s.End - elapsed.Nanoseconds()
	t.record(s, elapsed)
	return s.ID
}

func (t *Tracer) record(s Span, elapsed time.Duration) {
	t.spans.Add(1)

	t.stageMu.Lock()
	w := t.stages[s.Stage]
	if w == nil {
		w = &stageWindow{}
		t.stages[s.Stage] = w
	}
	ms := elapsed.Seconds() * 1e3
	if len(w.buf) < stageWindowCap {
		w.buf = append(w.buf, ms)
	} else {
		w.buf[w.next] = ms
		w.next = (w.next + 1) % stageWindowCap
	}
	w.total++
	t.stageMu.Unlock()

	if s.Workflow != "" {
		t.mu.Lock()
		ws := t.wfs[s.Workflow]
		if ws == nil {
			ws = &wfSpans{last: make(map[string]uint64)}
			t.wfs[s.Workflow] = ws
		}
		if len(ws.spans) < t.maxPer {
			ws.spans = append(ws.spans, s)
		} else {
			t.dropped.Add(1)
		}
		ws.last[s.Stage] = s.ID
		t.mu.Unlock()
	}

	if t.sink != nil {
		line := otlpLine(s)
		t.sinkMu.Lock()
		t.sink.Write(line)
		t.sinkMu.Unlock()
	}
}

// Spans returns a copy of the retained span log for one workflow, in
// completion order.
func (t *Tracer) Spans(workflow string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ws := t.wfs[workflow]
	if ws == nil {
		return nil
	}
	return append([]Span(nil), ws.spans...)
}

// LastSpan returns the ID of the workflow's most recent span of the
// given stage (0 if none) — the lookup causal links are built from.
func (t *Tracer) LastSpan(workflow, stage string) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ws := t.wfs[workflow]; ws != nil {
		return ws.last[stage]
	}
	return 0
}

// Release drops the retained spans of one workflow (called when the
// server evicts the workflow record, so trace memory has the same
// lifetime as status memory).
func (t *Tracer) Release(workflow string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.wfs, workflow)
	t.mu.Unlock()
}

// StageStats summarises one stage's latency window.
type StageStats struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// StageSummary rolls the per-stage windows up for /metrics.
func (t *Tracer) StageSummary() map[string]StageStats {
	if t == nil {
		return nil
	}
	t.stageMu.Lock()
	defer t.stageMu.Unlock()
	out := make(map[string]StageStats, len(t.stages))
	for stage, w := range t.stages {
		q := stats.Quantiles(w.buf, 0.50, 0.90, 0.99)
		out[stage] = StageStats{Count: w.total, P50: q[0], P90: q[1], P99: q[2]}
	}
	return out
}

// Totals reports completed and dropped (not-retained) span counts.
func (t *Tracer) Totals() (spans, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	return t.spans.Load(), t.dropped.Load()
}

// Close flushes the sink (if any). The tracer stays usable; Close is
// for shutdown paths that must not lose buffered export lines.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	t.sinkMu.Lock()
	defer t.sinkMu.Unlock()
	return t.sink.Flush()
}

// --- OTLP-shaped export ------------------------------------------------

type otlpVal struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
	BoolValue   bool   `json:"boolValue,omitempty"`
}

type otlpKV struct {
	Key   string  `json:"key"`
	Value otlpVal `json:"value"`
}

type otlpLink struct {
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
}

type otlpSpan struct {
	TraceID      string     `json:"traceId"`
	SpanID       string     `json:"spanId"`
	ParentSpanID string     `json:"parentSpanId,omitempty"`
	Name         string     `json:"name"`
	StartNano    string     `json:"startTimeUnixNano"`
	EndNano      string     `json:"endTimeUnixNano"`
	Attributes   []otlpKV   `json:"attributes,omitempty"`
	Links        []otlpLink `json:"links,omitempty"`
}

// TraceID derives the 16-byte hex trace identifier for a workflow: two
// FNV-1a digests of the ID, so all of one workflow's spans share a
// trace and the mapping is stable across restarts.
func TraceID(workflow string) string {
	h1 := fnv.New64a()
	h1.Write([]byte(workflow))
	h2 := fnv.New64a()
	h2.Write([]byte(workflow))
	h2.Write([]byte{0x9e})
	return fmt.Sprintf("%016x%016x", h1.Sum64(), h2.Sum64())
}

func spanIDHex(id uint64) string { return fmt.Sprintf("%016x", id) }

func otlpLine(s Span) []byte {
	o := otlpSpan{
		TraceID:   TraceID(s.Workflow),
		SpanID:    spanIDHex(s.ID),
		Name:      s.Stage,
		StartNano: strconv.FormatInt(s.Start, 10),
		EndNano:   strconv.FormatInt(s.End, 10),
	}
	if s.Parent != 0 {
		o.ParentSpanID = spanIDHex(s.Parent)
	}
	attr := func(k, v string) {
		if v != "" {
			o.Attributes = append(o.Attributes, otlpKV{Key: k, Value: otlpVal{StringValue: v}})
		}
	}
	attrInt := func(k string, v int64) {
		o.Attributes = append(o.Attributes, otlpKV{Key: k, Value: otlpVal{IntValue: strconv.FormatInt(v, 10)}})
	}
	attr("workflow", s.Workflow)
	attr("tenant", s.Tenant)
	attr("grid", s.Grid)
	attrInt("shard", int64(s.Shard))
	attr("trigger", s.Trigger)
	attr("path", s.Path)
	if s.Cone > 0 {
		attrInt("cone", int64(s.Cone))
	}
	attr("fallback", s.Fallback)
	if s.Adopted {
		o.Attributes = append(o.Attributes, otlpKV{Key: "adopted", Value: otlpVal{BoolValue: true}})
	}
	if s.Generation > 0 {
		attrInt("generation", int64(s.Generation))
	}
	attr("error", s.Err)
	if s.Link != 0 {
		// Cross-workflow causal edge into the linked workflow's trace.
		lt := o.TraceID
		if s.LinkWorkflow != "" {
			lt = TraceID(s.LinkWorkflow)
		}
		o.Links = append(o.Links, otlpLink{TraceID: lt, SpanID: spanIDHex(s.Link)})
	}
	line, err := json.Marshal(o)
	if err != nil { // fixed struct of marshalable fields cannot fail
		panic(err)
	}
	return append(line, '\n')
}
