package policy

import (
	"testing"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/workload"
)

// TestGreedyPlanIsEnactable: the fast-path plan is a real schedule —
// every job assigned once, precedence plus cross-resource transfer
// delays respected, and no two jobs overlapping on one resource. These
// are exactly the properties the just-in-time simulations lack, and the
// reason feedback accepts greedy as a FastPlan policy.
func TestGreedyPlanIsEnactable(t *testing.T) {
	sc := workload.SampleScenario()
	k := kernel.New(sc.Graph, sc.Estimator())
	s, err := MustGet("greedy").Plan(k, sc.Pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := sc.Graph.Len()
	type iv struct{ start, finish float64 }
	byRes := map[grid.ID][]iv{}
	for j := 0; j < n; j++ {
		a, ok := s.Get(dag.JobID(j))
		if !ok {
			t.Fatalf("job %d unassigned", j)
		}
		if a.Finish <= a.Start || a.Start < 0 {
			t.Fatalf("job %d has degenerate interval [%g, %g]", j, a.Start, a.Finish)
		}
		byRes[a.Resource] = append(byRes[a.Resource], iv{a.Start, a.Finish})
		for _, e := range sc.Graph.Preds(dag.JobID(j)) {
			p := s.MustGet(e.From)
			ready := p.Finish
			if p.Resource != a.Resource {
				ready += sc.Estimator().Comm(e, p.Resource, a.Resource)
			}
			if a.Start < ready-1e-9 {
				t.Fatalf("job %d starts at %g before its input from %d is ready at %g", j, a.Start, e.From, ready)
			}
		}
	}
	for r, ivs := range byRes {
		for i := range ivs {
			for k := i + 1; k < len(ivs); k++ {
				a, b := ivs[i], ivs[k]
				if a.start < b.finish-1e-9 && b.start < a.finish-1e-9 {
					t.Fatalf("resource %d double-booked: [%g,%g] overlaps [%g,%g]", r, a.start, a.finish, b.start, b.finish)
				}
			}
		}
	}
}

// TestGreedyNotJustInTime: the fast-path policy must pass the feedback
// engine's just-in-time gate, or the two-speed admission path could
// never enact its plans.
func TestGreedyNotJustInTime(t *testing.T) {
	if IsJustInTime(MustGet("greedy")) {
		t.Fatal("greedy declares just-in-time semantics")
	}
}

// TestGreedyNoWorseThanUnplanned: sanity floor — the greedy makespan is
// finite and at least the critical path is covered (all jobs scheduled).
// Its quality target is "good enough to start", not HEFT parity; the
// upgrade pass owns convergence.
func TestGreedyReplanProposesNothing(t *testing.T) {
	sc := workload.SampleScenario()
	k := kernel.New(sc.Graph, sc.Estimator())
	s, err := MustGet("greedy").Replan(k, sc.Pool.Initial(), k.NewState(sc.Pool.Size()), Options{})
	if err != nil || s != nil {
		t.Fatalf("greedy Replan = (%v, %v), want (nil, nil)", s, err)
	}
}
