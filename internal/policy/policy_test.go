package policy

import (
	"fmt"
	"sync"
	"testing"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// TestBuiltinsRegistered: the five built-in policies are present with the
// expected adaptivity.
func TestBuiltinsRegistered(t *testing.T) {
	want := map[string]bool{
		"heft": false, "aheft": true, "greedy": false,
		"minmin": false, "maxmin": false, "sufferage": false,
	}
	for name, adaptive := range want {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("%q not registered (have %v)", name, Names())
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
		if p.Adaptive() != adaptive {
			t.Fatalf("%q adaptive = %v, want %v", name, p.Adaptive(), adaptive)
		}
	}
}

// TestLookupCanonicalises: lookups are case- and whitespace-insensitive.
func TestLookupCanonicalises(t *testing.T) {
	for _, name := range []string{"AHEFT", " aheft ", "Aheft"} {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get accepted an unknown name")
	}
}

// stubPolicy is a registrable no-op for registry tests.
type stubPolicy struct{ name string }

func (s stubPolicy) Name() string   { return s.name }
func (s stubPolicy) Adaptive() bool { return false }
func (s stubPolicy) Plan(*kernel.Kernel, *grid.Pool, Options) (*schedule.Schedule, error) {
	return schedule.New(), nil
}
func (s stubPolicy) Replan(*kernel.Kernel, []grid.Resource, *kernel.State, Options) (*schedule.Schedule, error) {
	return nil, nil
}

// TestRegisterRejectsDuplicatesAndNil: registry invariants.
func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Fatal("Register(nil) accepted")
	}
	if err := Register(stubPolicy{name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(stubPolicy{name: "heft"}); err == nil {
		t.Fatal("duplicate of built-in accepted")
	}
	if err := Register(stubPolicy{name: "Test-Dup"}); err != nil {
		t.Fatal(err)
	}
	if err := Register(stubPolicy{name: "test-dup"}); err == nil {
		t.Fatal("canonical duplicate accepted")
	}
	if _, ok := Lookup("test-dup"); !ok {
		t.Fatal("registered stub not found")
	}
}

// TestRegistryConcurrentAccess hammers Register/Lookup/Names from many
// goroutines; run with -race.
func TestRegistryConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("race-%d", i)
			if err := Register(stubPolicy{name: name}); err != nil {
				t.Errorf("register %s: %v", name, err)
			}
			for j := 0; j < 100; j++ {
				if _, ok := Lookup(name); !ok {
					t.Errorf("lost %s", name)
				}
				Names()
				MustGet("aheft")
			}
		}()
	}
	wg.Wait()
}

// TestJITFamilyDiffers: the three heuristics are genuinely distinct
// policies that may produce different schedules but all complete.
func TestJITFamily(t *testing.T) {
	sc := workload.SampleScenario()
	for _, name := range []string{"minmin", "maxmin", "sufferage"} {
		p := MustGet(name)
		s, err := p.Plan(kernel.New(sc.Graph, sc.Estimator()), sc.Pool, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Len() != sc.Graph.Len() {
			t.Fatalf("%s: schedule covers %d of %d jobs", name, s.Len(), sc.Graph.Len())
		}
		if s.Makespan() <= 0 {
			t.Fatalf("%s: no makespan", name)
		}
	}
}

// TestJITValidation: the just-in-time planner rejects degenerate inputs.
func TestJITValidation(t *testing.T) {
	sc := workload.SampleScenario()
	p := MustGet("minmin")
	if _, err := p.Plan(kernel.New(dag.New("empty"), sc.Estimator()), sc.Pool, Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := p.Plan(kernel.New(sc.Graph, sc.Estimator()), nil, Options{}); err == nil {
		t.Fatal("nil pool accepted")
	}
}

// TestHEFTPlanEqualsAHEFTPlan: the adaptive policy's initial plan is
// classic HEFT by construction (§3.4: AHEFT is identical to HEFT when
// clock = 0).
func TestHEFTPlanEqualsAHEFTPlan(t *testing.T) {
	sc := workload.SampleScenario()
	h, err := MustGet("heft").Plan(kernel.New(sc.Graph, sc.Estimator()), sc.Pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := MustGet("aheft").Plan(kernel.New(sc.Graph, sc.Estimator()), sc.Pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Makespan() != a.Makespan() {
		t.Fatalf("HEFT plan %g != AHEFT plan %g", h.Makespan(), a.Makespan())
	}
	for _, j := range sc.Graph.Jobs() {
		if h.MustGet(j.ID) != a.MustGet(j.ID) {
			t.Fatalf("job %s differs between plans", j.Name)
		}
	}
}

// TestStaticPoliciesProposeNothing: Replan on non-adaptive policies is a
// declared no-op.
func TestStaticPoliciesProposeNothing(t *testing.T) {
	sc := workload.SampleScenario()
	for _, name := range []string{"heft", "minmin", "maxmin", "sufferage"} {
		k := kernel.New(sc.Graph, sc.Estimator())
		s, err := MustGet(name).Replan(k, sc.Pool.Initial(), k.NewState(0), Options{})
		if err != nil || s != nil {
			t.Fatalf("%s.Replan = (%v, %v), want (nil, nil)", name, s, err)
		}
	}
}

// TestAHEFTReplanAtClockZeroIsHEFT: rescheduling an empty snapshot over
// the initial pool reproduces the HEFT plan exactly.
func TestAHEFTReplanAtClockZeroIsHEFT(t *testing.T) {
	sc := workload.SampleScenario()
	k := kernel.New(sc.Graph, sc.Estimator())
	plan, err := MustGet("heft").Plan(k, sc.Pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := MustGet("aheft").Replan(k, sc.Pool.Initial(), k.NewState(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re == nil || re.Makespan() != plan.Makespan() {
		t.Fatalf("replan at clock 0 != HEFT plan")
	}
}
