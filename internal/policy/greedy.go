package policy

import (
	"fmt"

	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
)

// greedyPolicy is the fast half of the daemon's two-speed admission path:
// a one-pass list scheduler that walks the jobs in topological order and
// binds each to the resource with the earliest finish, appending at the
// end of the resource's timeline. It skips both passes that make full
// HEFT expensive — no upward-rank computation over the resource set, no
// insertion-based slot search — so planning cost is O(V·R + E·R) with
// trivial constants, and the plan it produces is a real enactable
// schedule (exclusive resource intervals, precedence plus transfer delays
// respected), unlike the just-in-time dispatch simulations. The plan is
// deliberately mediocre: an admitted workflow starts immediately and the
// daemon upgrades it to the full HEFT plan asynchronously
// (planner.TriggerUpgrade) once the overload pressure allows.
type greedyPolicy struct{}

func (greedyPolicy) Name() string   { return "greedy" }
func (greedyPolicy) Adaptive() bool { return false }

func (greedyPolicy) Plan(k *kernel.Kernel, pool *grid.Pool, _ Options) (*schedule.Schedule, error) {
	g := k.Graph()
	if g == nil || g.Len() == 0 {
		return nil, fmt.Errorf("greedy: empty workflow")
	}
	if pool == nil || len(pool.Initial()) == 0 {
		return nil, fmt.Errorf("greedy: no resources at time 0")
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("greedy: %w", err)
	}
	est := k.Estimator()
	rs := pool.Initial()
	free := make(map[grid.ID]float64, len(rs)) // resource timeline tails
	for _, r := range rs {
		free[r.ID] = 0
	}
	resOf := make([]grid.ID, g.Len())
	finish := make([]float64, g.Len())
	s := schedule.New()
	for _, j := range order {
		best, bestStart, bestFin := grid.NoResource, 0.0, 0.0
		for _, r := range rs {
			// Data-ready time on r: every predecessor's finish plus its
			// transfer when the file must cross resources.
			ready := 0.0
			for _, e := range g.Preds(j) {
				t := finish[e.From]
				if resOf[e.From] != r.ID {
					t += est.Comm(e, resOf[e.From], r.ID)
				}
				if t > ready {
					ready = t
				}
			}
			start := ready
			if tail := free[r.ID]; tail > start {
				start = tail
			}
			fin := start + est.Comp(j, r.ID)
			if best == grid.NoResource || fin < bestFin || (fin == bestFin && r.ID < best) {
				best, bestStart, bestFin = r.ID, start, fin
			}
		}
		resOf[j], finish[j] = best, bestFin
		free[best] = bestFin
		s.Assign(schedule.Assignment{Job: j, Resource: best, Start: bestStart, Finish: bestFin})
	}
	return s, nil
}

func (greedyPolicy) Replan(*kernel.Kernel, []grid.Resource, *kernel.State, Options) (*schedule.Schedule, error) {
	return nil, nil // the upgrade path replans with the full policy
}
