package policy

import (
	"aheft/internal/core"
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/schedule"
)

// heftPolicy is traditional one-shot HEFT: plan on the time-0 pool, never
// look back. A static planner cannot use resources it does not know about,
// which is precisely the deficiency AHEFT addresses.
type heftPolicy struct{}

func (heftPolicy) Name() string   { return "heft" }
func (heftPolicy) Adaptive() bool { return false }

func (heftPolicy) Plan(g *dag.Graph, est cost.Estimator, pool *grid.Pool, opts Options) (*schedule.Schedule, error) {
	return heft.Schedule(g, est, pool.Initial(), heft.Options{NoInsertion: opts.NoInsertion})
}

func (heftPolicy) Replan(*dag.Graph, cost.Estimator, []grid.Resource, *core.ExecState, Options) (*schedule.Schedule, error) {
	return nil, nil // static: never proposes a replacement
}

// aheftPolicy is the paper's adaptive rescheduling strategy: the initial
// plan is classic HEFT, and every run-time event is evaluated by
// rescheduling the unfinished jobs over the enlarged resource set
// (procedure schedule(S0, P, H) of Fig. 3, with H = HEFT).
type aheftPolicy struct{}

func (aheftPolicy) Name() string   { return "aheft" }
func (aheftPolicy) Adaptive() bool { return true }

func (aheftPolicy) Plan(g *dag.Graph, est cost.Estimator, pool *grid.Pool, opts Options) (*schedule.Schedule, error) {
	return heft.Schedule(g, est, pool.Initial(), heft.Options{NoInsertion: opts.NoInsertion})
}

func (aheftPolicy) Replan(g *dag.Graph, est cost.Estimator, rs []grid.Resource, st *core.ExecState, opts Options) (*schedule.Schedule, error) {
	return core.Reschedule(g, est, rs, st, opts.Core())
}
