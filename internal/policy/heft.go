package policy

import (
	"fmt"

	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
)

// heftPolicy is traditional one-shot HEFT: plan on the time-0 pool, never
// look back. A static planner cannot use resources it does not know about,
// which is precisely the deficiency AHEFT addresses. It is the kernel's
// Static pass, verbatim.
type heftPolicy struct{}

func (heftPolicy) Name() string   { return "heft" }
func (heftPolicy) Adaptive() bool { return false }

func (heftPolicy) Plan(k *kernel.Kernel, pool *grid.Pool, opts Options) (*schedule.Schedule, error) {
	if pool == nil || len(pool.Initial()) == 0 {
		return nil, fmt.Errorf("heft: no resources at time 0")
	}
	return k.Static(pool.Initial(), opts.Kernel())
}

func (heftPolicy) Replan(*kernel.Kernel, []grid.Resource, *kernel.State, Options) (*schedule.Schedule, error) {
	return nil, nil // static: never proposes a replacement
}

// aheftPolicy is the paper's adaptive rescheduling strategy: the initial
// plan is classic HEFT, and every run-time event is evaluated by
// rescheduling the unfinished jobs over the enlarged resource set
// (procedure schedule(S0, P, H) of Fig. 3, with H = HEFT) — the kernel's
// Reschedule pass over the engine's execution state.
type aheftPolicy struct{}

func (aheftPolicy) Name() string   { return "aheft" }
func (aheftPolicy) Adaptive() bool { return true }

func (aheftPolicy) Plan(k *kernel.Kernel, pool *grid.Pool, opts Options) (*schedule.Schedule, error) {
	if pool == nil || len(pool.Initial()) == 0 {
		return nil, fmt.Errorf("aheft: no resources at time 0")
	}
	return k.Static(pool.Initial(), opts.Kernel())
}

func (aheftPolicy) Replan(k *kernel.Kernel, rs []grid.Resource, st *kernel.State, opts Options) (*schedule.Schedule, error) {
	return k.Reschedule(rs, st, opts.Kernel())
}
