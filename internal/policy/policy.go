// Package policy defines the pluggable scheduling-policy abstraction the
// paper's Fig. 2 loop is generic over. The paper presents AHEFT as one
// instance of a general adaptive rescheduling architecture — "the heuristic
// H" inside procedure schedule(S0, P, H) is a parameter — and this package
// makes that parameterisation concrete: a Policy produces the initial plan
// for a workflow and, if it is adaptive, candidate replacement schedules
// from execution snapshots. One generic engine (the analytic runner and
// the event-driven Service in internal/planner) then drives any registered
// policy: classic static HEFT, the paper's AHEFT, and the dynamic
// just-in-time Min-Min family all run through the same path.
//
// Every policy is a thin ordering over the shared scheduling kernel
// (internal/kernel): the engine creates one kernel.Kernel per workflow run
// — it owns the rank cache, the dense execution state and all placement
// scratch — and passes it to Plan/Replan. Policies therefore stay
// stateless and safe for concurrent use: one Policy value may serve many
// workflows at once (the root facade's Session runs one goroutine per
// workflow against shared registry entries), each with its own kernel.
//
// Policies are registered by name in a process-wide thread-safe registry
// so drivers and the root facade can select them with
// aheft.WithPolicy("aheft") without linking engine internals.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"aheft/internal/data"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
)

// Options tunes a policy. The zero value reproduces the paper's
// configuration: insertion-based HEFT, pin-running-jobs semantics,
// adoption on any strict improvement.
type Options struct {
	// NoInsertion disables HEFT's insertion-based slot policy (ablation).
	NoInsertion bool
	// RestartRunning reschedules mid-execution jobs, discarding their
	// partial work (ablation). The default pins running jobs in place.
	RestartRunning bool
	// TieWindow enables near-tie rank-order exploration in the
	// rescheduler (see kernel.Options.TieWindow). Zero is paper-faithful
	// greedy; ≈0.05 recovers the paper's Fig. 5(b) worked example.
	TieWindow float64
	// Eps is the minimum makespan improvement required to adopt a new
	// schedule. Zero means the 1e-9 float tolerance.
	Eps float64
	// Incremental lets the rescheduler take the memoized delta path when
	// the event's dirty cone is small enough, falling back to a full
	// replan otherwise (see kernel.Options.Incremental). Engines enable
	// it per Replan call; it has no effect on Plan.
	Incremental bool
	// MaxConeFrac caps the dirty-cone size as a fraction of the pending
	// jobs before the delta path falls back to a full replan. Zero means
	// kernel.DefaultMaxConeFrac.
	MaxConeFrac float64
	// Data, when non-nil, turns on data-aware scheduling: file-carrying
	// edges cost size ÷ effective bandwidth, transfers serialize over the
	// model's capacity channels, and staged replicas are reused. Engines
	// bind it to their kernels (kernel.SetData); nil keeps every schedule
	// bit-identical to the classic point-to-point model.
	Data *data.Model
}

// Kernel converts the options into the scheduling-kernel options.
func (o Options) Kernel() kernel.Options {
	return kernel.Options{
		NoInsertion: o.NoInsertion,
		TieWindow:   o.TieWindow,
		Incremental: o.Incremental,
		MaxConeFrac: o.MaxConeFrac,
	}
}

// Policy is one scheduling strategy the generic engine can drive.
//
// Plan produces the initial schedule for the workflow, whose graph and
// estimator the kernel k is bound to. It receives the full dynamic pool:
// a look-ahead policy (HEFT, AHEFT) plans on the resources available at
// time 0, while a just-in-time policy (Min-Min) simulates its dispatch
// decisions across the pool's whole arrival timeline and returns the
// realised schedule.
//
// Replan produces a candidate replacement schedule from the dense
// execution snapshot st over the resources rs available at st.Clock.
// Returning (nil, nil) means the policy proposes nothing for this event;
// the engine records no decision. Replan is only called when Adaptive
// reports true.
//
// Implementations must be stateless (or internally synchronised): the
// kernel argument carries all per-run mutable state.
type Policy interface {
	// Name returns the registry key, lower-case ("heft", "aheft", …).
	Name() string
	// Adaptive reports whether the policy reacts to run-time events.
	Adaptive() bool
	// Plan produces the initial schedule.
	Plan(k *kernel.Kernel, pool *grid.Pool, opts Options) (*schedule.Schedule, error)
	// Replan produces a candidate replacement schedule, or (nil, nil) to
	// keep the current one.
	Replan(k *kernel.Kernel, rs []grid.Resource, st *kernel.State, opts Options) (*schedule.Schedule, error)
}

// JustInTime is an optional interface a Policy implements to declare that
// its Plan is a dispatch *simulation* — decision-time file transfers, no
// communication/computation overlap — whose realised schedule must not be
// re-enacted by the discrete-event executor: ship-on-finish enactment
// would start transfers earlier than the model allows and silently erase
// the baseline's structural penalty. Engines that enact schedules reject
// such policies instead of producing subtly different makespans.
type JustInTime interface {
	JustInTime() bool
}

// IsJustInTime reports whether p declares just-in-time Plan semantics.
func IsJustInTime(p Policy) bool {
	j, ok := p.(JustInTime)
	return ok && j.JustInTime()
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Policy)
)

// Canon returns the canonical registry form of a policy name.
func Canon(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds a policy under Canon(p.Name()). Registering a duplicate
// name is an error so two packages cannot silently shadow each other.
func Register(p Policy) error {
	if p == nil {
		return fmt.Errorf("policy: Register(nil)")
	}
	name := Canon(p.Name())
	if name == "" {
		return fmt.Errorf("policy: empty policy name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("policy: %q already registered", name)
	}
	registry[name] = p
	return nil
}

// MustRegister is Register that panics on error; for init-time use.
func MustRegister(p Policy) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Lookup returns the policy registered under Canon(name).
func Lookup(name string) (Policy, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[Canon(name)]
	return p, ok
}

// Get returns the policy registered under name, or an error naming the
// available policies.
func Get(name string) (Policy, error) {
	if p, ok := Lookup(name); ok {
		return p, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// MustGet is Get that panics on error; for built-in names in tests and
// drivers.
func MustGet(name string) Policy {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the registered policy names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	MustRegister(heftPolicy{})
	MustRegister(aheftPolicy{})
	MustRegister(greedyPolicy{})
	MustRegister(jitPolicy{h: MinMin})
	MustRegister(jitPolicy{h: MaxMin})
	MustRegister(jitPolicy{h: Sufferage})
}
