package policy

import (
	"fmt"

	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/schedule"
	"aheft/internal/sim"
)

// Heuristic selects the mapping rule a just-in-time policy uses at each
// decision point (the paper's §4.2 dynamic baseline family).
type Heuristic int

const (
	// MinMin maps first the job whose best completion time is smallest —
	// favouring short jobs, the paper's dynamic baseline.
	MinMin Heuristic = iota
	// MaxMin maps first the job whose best completion time is largest —
	// favouring long jobs.
	MaxMin
	// Sufferage maps first the job that would suffer most from losing its
	// best resource (largest second-best minus best completion time).
	Sufferage
)

// String returns the heuristic's conventional display name.
func (h Heuristic) String() string {
	switch h {
	case MinMin:
		return "Min-Min"
	case MaxMin:
		return "Max-Min"
	case Sufferage:
		return "Sufferage"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// RegistryName returns the lower-case policy-registry key for the
// heuristic (the single source of the heuristic → policy-name mapping).
func (h Heuristic) RegistryName() string {
	switch h {
	case MaxMin:
		return "maxmin"
	case Sufferage:
		return "sufferage"
	default:
		return "minmin"
	}
}

// jitPolicy is the dynamic just-in-time baseline of the paper's §4.2, in
// the style of DAGMan-like executors the paper classifies as "local
// just-in-time decision" systems.
//
// Its Plan is the full dispatch simulation: a job is considered for
// mapping only once it is ready (all predecessors finished), is bound only
// to a currently idle resource, and its input files are transferred only
// after the binding decision (§4.1 assumption 2) — the bound resource
// stalls while inputs stream in. Resource arrivals are consumed inside the
// simulation as the pool timeline unfolds, so the policy is not adaptive
// in the Fig. 2 sense: there is no standing schedule to revise, hence
// Replan proposes nothing. The two structural penalties relative to a
// full-ahead static plan — no communication/computation overlap, and no
// critical-path awareness — are what make the dynamic strategy lose by a
// large factor on data-intensive workflows, reproducing the paper's
// Min-Min ≈ 3× HEFT headline.
//
// The per-(job, resource) completion evaluation is the kernel's
// DispatchBest; the three heuristics are orderings over its output.
type jitPolicy struct {
	h Heuristic
}

func (p jitPolicy) Name() string   { return p.h.RegistryName() }
func (p jitPolicy) Adaptive() bool { return false }

// JustInTime marks the policy's Plan as a dispatch simulation whose
// semantics the discrete-event executor must not re-enact (see the
// JustInTime interface).
func (jitPolicy) JustInTime() bool { return true }

func (p jitPolicy) Plan(k *kernel.Kernel, pool *grid.Pool, opts Options) (*schedule.Schedule, error) {
	g := k.Graph()
	if g == nil || g.Len() == 0 {
		return nil, fmt.Errorf("minmin: empty workflow")
	}
	if pool == nil || len(pool.Initial()) == 0 {
		return nil, fmt.Errorf("minmin: no resources at time 0")
	}
	n := g.Len()
	st := &jitState{
		k:        k,
		g:        g,
		h:        p.h,
		simr:     sim.New(),
		idle:     make([]bool, pool.Size()),
		assigned: make([]bool, n),
		resOf:    make([]grid.ID, n),
		pending:  make([]int, n),
		sched:    schedule.New(),
	}
	for _, j := range g.Jobs() {
		st.pending[j.ID] = len(g.Preds(j.ID))
		st.resOf[j.ID] = grid.NoResource
	}
	for _, r := range pool.Initial() {
		st.idle[r.ID] = true
	}
	for _, t := range pool.ChangeTimes() {
		t := t
		st.simr.At(t, sim.PriResourceChange, func() {
			for _, r := range pool.ArrivalsAt(t) {
				st.idle[r.ID] = true
			}
			st.dispatch()
		})
	}
	st.simr.At(0, sim.PriDispatch, st.dispatch)
	if err := st.simr.Run(); err != nil {
		return nil, err
	}
	if st.nDone != n {
		return nil, fmt.Errorf("minmin: deadlock — %d of %d jobs finished", st.nDone, n)
	}
	return st.sched, nil
}

func (jitPolicy) Replan(*kernel.Kernel, []grid.Resource, *kernel.State, Options) (*schedule.Schedule, error) {
	return nil, nil // arrivals are consumed inside the Plan simulation
}

// jitState is the dispatch simulation the just-in-time policies share.
// Job and resource state is dense (IDs are dense by construction), so the
// simulation allocates only its scratch slices once.
type jitState struct {
	k    *kernel.Kernel
	g    *dag.Graph
	h    Heuristic
	simr *sim.Simulator

	idle     []bool // by resource ID
	nDone    int    // finished-job count (deadlock detection)
	assigned []bool
	resOf    []grid.ID // by job ID; NoResource until dispatched
	pending  []int     // unfinished predecessor count
	sched    *schedule.Schedule

	ready    []dag.JobID // scratch: ready jobs, JobID order
	idleList []grid.ID   // scratch: idle resources, ID order
	bests    []bestOf    // scratch: per-ready-job best dispatch
}

type bestOf struct {
	res    grid.ID
	done   float64
	second float64
}

// readySet refills st.ready with unmapped jobs whose predecessors have
// all finished, in JobID order for determinism.
func (st *jitState) readySet() []dag.JobID {
	st.ready = st.ready[:0]
	for _, j := range st.g.Jobs() {
		if !st.assigned[j.ID] && st.pending[j.ID] == 0 {
			st.ready = append(st.ready, j.ID)
		}
	}
	return st.ready
}

// idleResources refills st.idleList with the currently idle resources in
// ID order.
func (st *jitState) idleResources() []grid.ID {
	st.idleList = st.idleList[:0]
	for r, ok := range st.idle {
		if ok {
			st.idleList = append(st.idleList, grid.ID(r))
		}
	}
	return st.idleList
}

// dispatch binds ready jobs to idle resources, one (job, resource) pair at
// a time per the heuristic, until either set drains.
func (st *jitState) dispatch() {
	now := st.simr.Now()
	for {
		ready := st.readySet()
		idle := st.idleResources()
		if len(ready) == 0 || len(idle) == 0 {
			return
		}
		if cap(st.bests) < len(ready) {
			st.bests = make([]bestOf, len(ready))
		}
		bests := st.bests[:len(ready)]
		for i, j := range ready {
			r, done, second := st.k.DispatchBest(j, idle, now, st.resOf)
			bests[i] = bestOf{res: r, done: done, second: second}
		}
		pick := 0
		for i := 1; i < len(ready); i++ {
			switch st.h {
			case MinMin:
				if bests[i].done < bests[pick].done {
					pick = i
				}
			case MaxMin:
				if bests[i].done > bests[pick].done {
					pick = i
				}
			case Sufferage:
				if bests[i].second-bests[i].done > bests[pick].second-bests[pick].done {
					pick = i
				}
			}
		}
		st.assign(ready[pick], bests[pick].res, bests[pick].done)
	}
}

// assign binds job j to resource r until done.
func (st *jitState) assign(j dag.JobID, r grid.ID, done float64) {
	st.assigned[j] = true
	st.resOf[j] = r
	st.idle[r] = false
	w := st.k.Estimator().Comp(j, r)
	st.sched.Assign(schedule.Assignment{Job: j, Resource: r, Start: done - w, Finish: done})
	st.simr.At(done, sim.PriJobFinish, func() {
		st.nDone++
		st.idle[r] = true
		for _, e := range st.g.Succs(j) {
			st.pending[e.To]--
		}
		st.dispatch()
	})
}
