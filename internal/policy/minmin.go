package policy

import (
	"fmt"
	"sort"

	"aheft/internal/core"
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/schedule"
	"aheft/internal/sim"
)

// Heuristic selects the mapping rule a just-in-time policy uses at each
// decision point (the paper's §4.2 dynamic baseline family).
type Heuristic int

const (
	// MinMin maps first the job whose best completion time is smallest —
	// favouring short jobs, the paper's dynamic baseline.
	MinMin Heuristic = iota
	// MaxMin maps first the job whose best completion time is largest —
	// favouring long jobs.
	MaxMin
	// Sufferage maps first the job that would suffer most from losing its
	// best resource (largest second-best minus best completion time).
	Sufferage
)

// String returns the heuristic's conventional display name.
func (h Heuristic) String() string {
	switch h {
	case MinMin:
		return "Min-Min"
	case MaxMin:
		return "Max-Min"
	case Sufferage:
		return "Sufferage"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// RegistryName returns the lower-case policy-registry key for the
// heuristic (the single source of the heuristic → policy-name mapping;
// the deprecated minmin shim resolves through it too).
func (h Heuristic) RegistryName() string {
	switch h {
	case MaxMin:
		return "maxmin"
	case Sufferage:
		return "sufferage"
	default:
		return "minmin"
	}
}

// jitPolicy is the dynamic just-in-time baseline of the paper's §4.2, in
// the style of DAGMan-like executors the paper classifies as "local
// just-in-time decision" systems.
//
// Its Plan is the full dispatch simulation: a job is considered for
// mapping only once it is ready (all predecessors finished), is bound only
// to a currently idle resource, and its input files are transferred only
// after the binding decision (§4.1 assumption 2) — the bound resource
// stalls while inputs stream in. Resource arrivals are consumed inside the
// simulation as the pool timeline unfolds, so the policy is not adaptive
// in the Fig. 2 sense: there is no standing schedule to revise, hence
// Replan proposes nothing. The two structural penalties relative to a
// full-ahead static plan — no communication/computation overlap, and no
// critical-path awareness — are what make the dynamic strategy lose by a
// large factor on data-intensive workflows, reproducing the paper's
// Min-Min ≈ 3× HEFT headline.
type jitPolicy struct {
	h Heuristic
}

func (p jitPolicy) Name() string   { return p.h.RegistryName() }
func (p jitPolicy) Adaptive() bool { return false }

// JustInTime marks the policy's Plan as a dispatch simulation whose
// semantics the discrete-event executor must not re-enact (see the
// JustInTime interface).
func (jitPolicy) JustInTime() bool { return true }

func (p jitPolicy) Plan(g *dag.Graph, est cost.Estimator, pool *grid.Pool, opts Options) (*schedule.Schedule, error) {
	if g == nil || g.Len() == 0 {
		return nil, fmt.Errorf("minmin: empty workflow")
	}
	if pool == nil || len(pool.Initial()) == 0 {
		return nil, fmt.Errorf("minmin: no resources at time 0")
	}
	st := &jitState{
		g:        g,
		est:      est,
		h:        p.h,
		simr:     sim.New(),
		idle:     make(map[grid.ID]bool),
		finished: make(map[dag.JobID]bool),
		assigned: make(map[dag.JobID]bool),
		resOf:    make(map[dag.JobID]grid.ID),
		pending:  make(map[dag.JobID]int),
		sched:    schedule.New(),
	}
	for _, j := range g.Jobs() {
		st.pending[j.ID] = len(g.Preds(j.ID))
	}
	for _, r := range pool.Initial() {
		st.idle[r.ID] = true
	}
	for _, t := range pool.ChangeTimes() {
		t := t
		st.simr.At(t, sim.PriResourceChange, func() {
			for _, r := range pool.ArrivalsAt(t) {
				st.idle[r.ID] = true
			}
			st.dispatch()
		})
	}
	st.simr.At(0, sim.PriDispatch, st.dispatch)
	if err := st.simr.Run(); err != nil {
		return nil, err
	}
	if len(st.finished) != g.Len() {
		return nil, fmt.Errorf("minmin: deadlock — %d of %d jobs finished", len(st.finished), g.Len())
	}
	return st.sched, nil
}

func (jitPolicy) Replan(*dag.Graph, cost.Estimator, []grid.Resource, *core.ExecState, Options) (*schedule.Schedule, error) {
	return nil, nil // arrivals are consumed inside the Plan simulation
}

// jitState is the dispatch simulation the just-in-time policies share.
type jitState struct {
	g    *dag.Graph
	est  cost.Estimator
	h    Heuristic
	simr *sim.Simulator

	idle     map[grid.ID]bool
	finished map[dag.JobID]bool
	assigned map[dag.JobID]bool
	resOf    map[dag.JobID]grid.ID
	pending  map[dag.JobID]int // unfinished predecessor count
	sched    *schedule.Schedule
}

// readySet returns unmapped jobs whose predecessors have all finished, in
// JobID order for determinism.
func (st *jitState) readySet() []dag.JobID {
	var ready []dag.JobID
	for _, j := range st.g.Jobs() {
		if !st.assigned[j.ID] && st.pending[j.ID] == 0 {
			ready = append(ready, j.ID)
		}
	}
	return ready
}

// idleResources returns the currently idle resources in ID order.
func (st *jitState) idleResources() []grid.ID {
	out := make([]grid.ID, 0, len(st.idle))
	for r, ok := range st.idle {
		if ok {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// completion returns when job j would finish if bound to idle resource r
// now: input files produced elsewhere start transferring at the decision
// (dynamic file-transfer policy), the resource stalls until they arrive,
// then computes.
func (st *jitState) completion(j dag.JobID, r grid.ID, now float64) float64 {
	inputReady := now
	for _, e := range st.g.Preds(j) {
		if st.resOf[e.From] == r {
			continue // produced here; predecessor finished before now
		}
		if arrive := now + st.est.Comm(e, st.resOf[e.From], r); arrive > inputReady {
			inputReady = arrive
		}
	}
	return inputReady + st.est.Comp(j, r)
}

// dispatch binds ready jobs to idle resources, one (job, resource) pair at
// a time per the heuristic, until either set drains.
func (st *jitState) dispatch() {
	now := st.simr.Now()
	for {
		ready := st.readySet()
		idle := st.idleResources()
		if len(ready) == 0 || len(idle) == 0 {
			return
		}
		type bestOf struct {
			res    grid.ID
			done   float64
			second float64
		}
		bests := make([]bestOf, len(ready))
		for i, j := range ready {
			b := bestOf{res: grid.NoResource}
			for _, r := range idle {
				d := st.completion(j, r, now)
				switch {
				case b.res == grid.NoResource:
					b.res, b.done, b.second = r, d, d
				case d < b.done:
					b.second = b.done
					b.res, b.done = r, d
				case d < b.second:
					b.second = d
				}
			}
			bests[i] = b
		}
		pick := 0
		for i := 1; i < len(ready); i++ {
			switch st.h {
			case MinMin:
				if bests[i].done < bests[pick].done {
					pick = i
				}
			case MaxMin:
				if bests[i].done > bests[pick].done {
					pick = i
				}
			case Sufferage:
				if bests[i].second-bests[i].done > bests[pick].second-bests[pick].done {
					pick = i
				}
			}
		}
		st.assign(ready[pick], bests[pick].res, bests[pick].done)
	}
}

// assign binds job j to resource r until done.
func (st *jitState) assign(j dag.JobID, r grid.ID, done float64) {
	st.assigned[j] = true
	st.resOf[j] = r
	st.idle[r] = false
	w := st.est.Comp(j, r)
	st.sched.Assign(schedule.Assignment{Job: j, Resource: r, Start: done - w, Finish: done})
	st.simr.At(done, sim.PriJobFinish, func() {
		st.finished[j] = true
		st.idle[r] = true
		for _, e := range st.g.Succs(j) {
			st.pending[e.To]--
		}
		st.dispatch()
	})
}
