package policy

// Behavioural suite of the just-in-time Min-Min family, migrated from the
// deleted legacy internal/minmin package: the same scenarios and expected
// makespans now run through the registered policies and the shared
// scheduling kernel.

import (
	"fmt"
	"math"
	"testing"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/kernel"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// runJIT plans one workflow under the named just-in-time heuristic
// through a fresh kernel, as the engine would.
func runJIT(t *testing.T, g *dag.Graph, est cost.Estimator, pool *grid.Pool, h Heuristic) *schedule.Schedule {
	t.Helper()
	s, err := MustGet(h.RegistryName()).Plan(kernel.New(g, est), pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func chain(t *testing.T, n int) *dag.Graph {
	t.Helper()
	g := dag.New("chain")
	var prev dag.JobID = dag.NoJob
	for i := 0; i < n; i++ {
		j := g.AddJob(fmt.Sprintf("c%d", i), "")
		if prev != dag.NoJob {
			g.MustEdge(prev, j, 5)
		}
		prev = j
	}
	return g.MustValidate()
}

func uniformTable(jobs, res int, w float64) *cost.Table {
	comp := make([][]float64, jobs)
	for i := range comp {
		row := make([]float64, res)
		for j := range row {
			row[j] = w
		}
		comp[i] = row
	}
	return cost.MustTable(comp)
}

// TestChainOnOneResource: a serial chain on a single resource finishes in
// the serial sum with no transfers.
func TestChainOnOneResource(t *testing.T) {
	g := chain(t, 5)
	tb := uniformTable(5, 1, 10)
	s := runJIT(t, g, cost.Exact(tb), grid.StaticPool(1), MinMin)
	if s.Makespan() != 50 {
		t.Fatalf("makespan = %g, want 50", s.Makespan())
	}
	if s.Len() != 5 {
		t.Fatalf("decisions = %d, want 5", s.Len())
	}
}

// TestChainStaysPut: with equal speeds, the dynamic mapper keeps a chain
// on the resource that holds its files (moving would add transfer time),
// so the makespan is again the serial sum.
func TestChainStaysPut(t *testing.T) {
	g := chain(t, 5)
	tb := uniformTable(5, 3, 10)
	s := runJIT(t, g, cost.Exact(tb), grid.StaticPool(3), MinMin)
	if s.Makespan() != 50 {
		t.Fatalf("makespan = %g, want 50 (no pointless migration)\n%s", s.Makespan(), s)
	}
}

// fanout builds one source feeding n independent sinks.
func fanout(t *testing.T, n int, data float64) *dag.Graph {
	t.Helper()
	g := dag.New("fanout")
	src := g.AddJob("src", "")
	for i := 0; i < n; i++ {
		s := g.AddJob(fmt.Sprintf("s%d", i), "")
		g.MustEdge(src, s, data)
	}
	return g.MustValidate()
}

// TestFanoutUsesParallelism: independent sinks spread over resources.
func TestFanoutUsesParallelism(t *testing.T) {
	g := fanout(t, 4, 0) // free transfers isolate the parallelism question
	tb := uniformTable(5, 4, 10)
	s := runJIT(t, g, cost.Exact(tb), grid.StaticPool(4), MinMin)
	// src 10, then 4 sinks in parallel on 4 resources: 20 total.
	if s.Makespan() != 20 {
		t.Fatalf("makespan = %g, want 20\n%s", s.Makespan(), s)
	}
}

// TestTransferStallsResource: with the just-in-time policy, a cross-
// resource consumer pays its transfer after binding — the executor cannot
// overlap it with upstream computation.
func TestTransferStallsResource(t *testing.T) {
	g := fanout(t, 2, 30)
	// src cost 10 everywhere; sinks cost 10.
	tb := uniformTable(3, 2, 10)
	s := runJIT(t, g, cost.Exact(tb), grid.StaticPool(2), MinMin)
	// src on r0 finishes at 10. Both sinks are ready at 10: Min-Min first
	// binds the co-located one (completion 20 beats 50), then — being a
	// just-in-time mapper that drains the ready set onto idle machines —
	// binds the second sink to the idle r1, which stalls 30 time units on
	// the input transfer and computes 40→50. A full-ahead plan would have
	// overlapped that transfer with the first sink's computation (or
	// queued the job locally, finishing at 30); the dynamic executor can
	// do neither, and that gap is the paper's §4.2 story.
	if s.Makespan() != 50 {
		t.Fatalf("makespan = %g, want 50\n%s", s.Makespan(), s)
	}
	second := s.MustGet(g.JobByName("s1"))
	if second.Resource == 0 {
		second = s.MustGet(g.JobByName("s0"))
	}
	if second.Start != 40 || second.Finish != 50 {
		t.Fatalf("stalled sink = %+v, want compute [40,50)", second)
	}
}

// TestResourceArrivalUsed: jobs becoming ready after an arrival can use
// the new resource.
func TestResourceArrivalUsed(t *testing.T) {
	g := fanout(t, 3, 0)
	tb := uniformTable(4, 2, 10)
	pool := grid.MustPool([]grid.Arrival{
		{Time: 0, Resource: grid.Resource{ID: 0}},
		{Time: 12, Resource: grid.Resource{ID: 1}},
	})
	s := runJIT(t, g, cost.Exact(tb), pool, MinMin)
	// src 0→10 on r0; sinks ready at 10: s0 on r0 10→20; r1 arrives at 12:
	// s1 12→22 on r1; s2 on r0 20→30. Makespan 30 (vs 40 on one resource).
	if s.Makespan() != 30 {
		t.Fatalf("makespan = %g, want 30\n%s", s.Makespan(), s)
	}
	used := s.Resources()
	if len(used) != 2 {
		t.Fatalf("arrival not used:\n%s", s)
	}
}

// TestJITScheduleStructurallySound: property test over random workloads
// for all three heuristics — complete coverage, no resource overlaps, and
// precedence (with the dynamic, decision-time transfer model) respected.
func TestJITScheduleStructurallySound(t *testing.T) {
	root := rng.New(0x5EED)
	for i := 0; i < 20; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 10 + r.IntN(40), CCR: []float64{0.5, 5}[r.IntN(2)], OutDegree: 0.3, Beta: 0.5,
		}, workload.GridParams{
			InitialResources: 2 + r.IntN(5), ChangeInterval: 300, ChangePct: 0.3, MaxEvents: 3,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []Heuristic{MinMin, MaxMin, Sufferage} {
			s := runJIT(t, sc.Graph, sc.Estimator(), sc.Pool, h)
			if err := s.Validate(sc.Graph, schedule.ValidateOptions{Pool: sc.Pool}); err != nil {
				t.Fatalf("case %d %s: %v", i, h, err)
			}
			// Precedence: a consumer's compute start is never before its
			// producer's finish.
			for _, j := range sc.Graph.Jobs() {
				aj := s.MustGet(j.ID)
				for _, e := range sc.Graph.Preds(j.ID) {
					ap := s.MustGet(e.From)
					if aj.Start+1e-9 < ap.Finish {
						t.Fatalf("case %d %s: %s starts %g before producer ends %g",
							i, h, j.Name, aj.Start, ap.Finish)
					}
				}
			}
		}
	}
}

// TestHeuristicsWithinFewPercent reproduces the observation (cited by the
// paper from the scheduling test bench study) that the batch heuristics
// behave very similarly on average.
func TestHeuristicsWithinFewPercent(t *testing.T) {
	root := rng.New(0xAB)
	sums := map[Heuristic]float64{}
	for i := 0; i < 30; i++ {
		r := root.Split(fmt.Sprintf("case-%d", i))
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 30, CCR: 1, OutDegree: 0.3, Beta: 0.5,
		}, workload.GridParams{InitialResources: 8}, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []Heuristic{MinMin, MaxMin, Sufferage} {
			s := runJIT(t, sc.Graph, sc.Estimator(), sc.Pool, h)
			sums[h] += s.Makespan()
		}
	}
	base := sums[MinMin]
	for h, s := range sums {
		if rel := math.Abs(s-base) / base; rel > 0.25 {
			t.Fatalf("%s deviates %.0f%% from Min-Min (sum %g vs %g)", h, 100*rel, s, base)
		}
	}
}

func TestHeuristicString(t *testing.T) {
	if MinMin.String() != "Min-Min" || MaxMin.String() != "Max-Min" || Sufferage.String() != "Sufferage" {
		t.Fatal("names wrong")
	}
	if Heuristic(99).String() == "" {
		t.Fatal("unknown heuristic must still print")
	}
}
