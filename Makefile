GO ?= go

.PHONY: all build test race vet fmt fmt-check check lint fuzz bench bench-server bench-all clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt-check vet build race

# lint mirrors the CI lint job: gofmt, vet, and staticcheck (installed on
# demand; skipped with a note when the module proxy is unreachable).
lint: fmt-check vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	elif $(GO) install honnef.co/go/tools/cmd/staticcheck@2025.1 2>/dev/null; then \
		"$$($(GO) env GOPATH)/bin/staticcheck" ./...; \
	else echo "staticcheck unavailable (offline?); skipped"; fi

# fuzz runs each fuzz target for FUZZTIME (CI runs 5m per target
# nightly). The committed seed corpora under */testdata/fuzz/ replay as
# plain tests in every `go test` run, so regressions reproduce
# deterministically.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzSerializeRoundTrip' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz 'FuzzReportRoundTrip' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz 'FuzzKernelReschedule' -fuzztime $(FUZZTIME) ./internal/kernel
	$(GO) test -run '^$$' -fuzz 'FuzzWALReplay' -fuzztime $(FUZZTIME) ./internal/durable

# bench runs the scheduling-kernel benches (placement + reschedule hot
# paths on layered 1k–20k-job stress DAGs, plus the end-to-end adaptive
# run) and snapshots ns/op, B/op and allocs/op into BENCH_kernel.json.
# Compare against BENCH_baseline.json, the pre-kernel numbers recorded at
# the refactor boundary.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkKernel' -benchmem . > bench-kernel.txt || { cat bench-kernel.txt; rm -f bench-kernel.txt; exit 1; }
	cat bench-kernel.txt
	$(GO) run ./cmd/benchjson < bench-kernel.txt > BENCH_kernel.json
	@rm -f bench-kernel.txt
	@echo "wrote BENCH_kernel.json"

# bench-server runs the daemon benches — end-to-end workflows/sec
# through the aheftd server core (wire ingestion, shard routing, engine,
# SSE completion), the feedback-loop ingest benches (report batches into
# the per-tenant history, and forced variance reschedules), the
# shared-grid co-scheduling rounds (2-tenant contention-aware planning +
# merged enactment vs the isolated baseline), and the durability benches
# (end-to-end throughput under each WAL fsync policy, raw WAL appends,
# and startup recovery replay) — and snapshots them into BENCH_SERVER_OUT
# (default BENCH_server.json, the committed reference). CI records a
# fresh snapshot and prints the ratio table with cmd/benchcmp.
BENCH_SERVER_OUT ?= BENCH_server.json
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkServer|BenchmarkFeedback|BenchmarkSharedGrid|BenchmarkWAL|BenchmarkRecovery' -benchmem . > bench-server.txt || { cat bench-server.txt; rm -f bench-server.txt; exit 1; }
	cat bench-server.txt
	$(GO) run ./cmd/benchjson < bench-server.txt > $(BENCH_SERVER_OUT)
	@rm -f bench-server.txt
	@echo "wrote $(BENCH_SERVER_OUT)"

# bench-all runs the full benchmark suite, including the paper-scale
# experiment regeneration benches.
bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
