GO ?= go

.PHONY: all build test race vet fmt fmt-check check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt-check vet build race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
