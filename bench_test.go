// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (run the cmd/experiments binary for the full printed tables;
// these benches time a reduced sweep of the same code and report the key
// headline metric via ReportMetric), plus ablation benches for the design
// choices called out in DESIGN.md and micro-benchmarks of the scheduling
// kernel. The BenchmarkKernel* family is what `make bench` records into
// BENCH_kernel.json.
//
//	go test -bench=. -benchmem
package aheft_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aheft"
	"aheft/internal/core"
	"aheft/internal/data"
	"aheft/internal/drive"
	"aheft/internal/durable"
	"aheft/internal/experiment"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/kernel"
	"aheft/internal/rng"
	"aheft/internal/schedule"
	"aheft/internal/server"
	"aheft/internal/wire"
	"aheft/internal/workload"
)

// benchCfg is the reduced configuration all table/figure benches share.
func benchCfg() experiment.Config {
	return experiment.Config{Samples: 2, Seed: 1, AppJobCap: 200, WithMinMin: true}
}

// runExperiment drives one registry entry b.N times and reports the first
// row's headline number so regressions in *results* (not just speed) are
// visible in benchmark diffs.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg()
	runner := experiment.Registry[id]
	if runner == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiment.Table
	for i := 0; i < b.N; i++ {
		t, err := runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil && len(last.Rows) > 0 {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(last.Rows[0][1], "%"), 64); err == nil {
			b.ReportMetric(v, "row0")
		}
	}
}

// --- One benchmark per table and figure of the evaluation (§4). ---

// BenchmarkFig5_SampleDAG regenerates the Fig. 4/5 worked example
// (HEFT 80, AHEFT 76).
func BenchmarkFig5_SampleDAG(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkHeadline_RandomDAGs regenerates the §4.2 summary (HEFT vs AHEFT
// vs dynamic Min-Min average makespans).
func BenchmarkHeadline_RandomDAGs(b *testing.B) { runExperiment(b, "headline") }

// BenchmarkTable3_CCR regenerates Table 3 (random DAGs, improvement vs
// CCR).
func BenchmarkTable3_CCR(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4_Jobs regenerates Table 4 (random DAGs, improvement vs
// job count).
func BenchmarkTable4_Jobs(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable6_Apps regenerates Table 6 (BLAST/WIEN2K average makespans
// and improvement).
func BenchmarkTable6_Apps(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7_AppJobs regenerates Table 7 (applications, improvement
// vs job count).
func BenchmarkTable7_AppJobs(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkTable8_AppCCR regenerates Table 8 (applications, improvement vs
// CCR).
func BenchmarkTable8_AppCCR(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkFig8a_CCR regenerates Fig. 8(a): makespan vs CCR.
func BenchmarkFig8a_CCR(b *testing.B) { runExperiment(b, "fig8a") }

// BenchmarkFig8b_Beta regenerates Fig. 8(b): makespan vs β.
func BenchmarkFig8b_Beta(b *testing.B) { runExperiment(b, "fig8b") }

// BenchmarkFig8c_Jobs regenerates Fig. 8(c): makespan vs job count.
func BenchmarkFig8c_Jobs(b *testing.B) { runExperiment(b, "fig8c") }

// BenchmarkFig8d_Pool regenerates Fig. 8(d): makespan vs initial pool.
func BenchmarkFig8d_Pool(b *testing.B) { runExperiment(b, "fig8d") }

// BenchmarkFig8e_Interval regenerates Fig. 8(e): makespan vs change
// interval Δ.
func BenchmarkFig8e_Interval(b *testing.B) { runExperiment(b, "fig8e") }

// BenchmarkFig8f_Pct regenerates Fig. 8(f): makespan vs change percentage
// δ.
func BenchmarkFig8f_Pct(b *testing.B) { runExperiment(b, "fig8f") }

// --- Ablation benches for the design choices DESIGN.md calls out. ---

func benchScenario(b *testing.B, jobs int) *workload.Scenario {
	b.Helper()
	r := rng.New(0xBE)
	sc, err := workload.RandomScenario(workload.RandomParams{
		Jobs: jobs, CCR: 5, OutDegree: 0.3, Beta: 0.5, Alpha: 2,
	}, workload.GridParams{
		InitialResources: 8, ChangeInterval: 300, ChangePct: 0.25, MaxEvents: 6,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

func benchAdaptive(b *testing.B, opts ...aheft.Option) {
	b.Helper()
	sc := benchScenario(b, 80)
	ctx := context.Background()
	var mk float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool, opts...)
		if err != nil {
			b.Fatal(err)
		}
		mk = res.Makespan
	}
	b.ReportMetric(mk, "makespan")
}

// BenchmarkAblation_Insertion: classic insertion-based slot policy.
func BenchmarkAblation_Insertion(b *testing.B) { benchAdaptive(b) }

// BenchmarkAblation_NoInsertion: append-only placement.
func BenchmarkAblation_NoInsertion(b *testing.B) {
	benchAdaptive(b, aheft.WithNoInsertion())
}

// BenchmarkAblation_PinRunning: paper-faithful pinning of running jobs.
func BenchmarkAblation_PinRunning(b *testing.B) { benchAdaptive(b) }

// BenchmarkAblation_RestartRunning: restart semantics for running jobs.
func BenchmarkAblation_RestartRunning(b *testing.B) {
	benchAdaptive(b, aheft.WithRestartRunning())
}

// BenchmarkAblation_TieWindow: near-tie rank-order exploration.
func BenchmarkAblation_TieWindow(b *testing.B) {
	benchAdaptive(b, aheft.WithTieWindow(0.05))
}

// --- Micro-benchmarks of the scheduling kernel. ---
//
// The BenchmarkKernel* family is the contract `make bench` snapshots into
// BENCH_kernel.json: ns/op and allocs/op of the placement and reschedule
// hot paths on layered stress DAGs (5k–20k jobs), plus the end-to-end
// adaptive run. BENCH_baseline.json pins the pre-kernel numbers recorded
// at the refactor boundary.

// kernelScenario builds a layered stress case: jobs/50-wide layers, fan-in
// 3, a 16-resource pool growing 25% every 500 time units.
func kernelScenario(b *testing.B, jobs int) *workload.Scenario {
	b.Helper()
	r := rng.New(0x5EED)
	sc, err := workload.LayeredScenario(workload.LayeredParams{
		Jobs: jobs, Width: jobs / 50, FanIn: 3, CCR: 1, Beta: 0.5,
	}, workload.GridParams{
		InitialResources: 16, ChangeInterval: 500, ChangePct: 0.25, MaxEvents: 4,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// BenchmarkKernelPlacement times one full static placement pass (ranks +
// EFT loop) at stress sizes.
func BenchmarkKernelPlacement(b *testing.B) {
	for _, jobs := range []int{1000, 5000, 20000} {
		jobs := jobs
		b.Run(fmt.Sprintf("v=%d", jobs), func(b *testing.B) {
			sc := kernelScenario(b, jobs)
			k := kernel.New(sc.Graph, sc.Estimator())
			rs := sc.Pool.Initial()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Static(rs, kernel.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// advanceBench progresses st tracker-style against the adopted schedule s
// — finishes with ship-on-filename transfers, pins for running jobs — the
// way the daemon's feedback loop maintains its state between evaluations
// (no Reset, so the kernel's delta memo stays live). It returns the
// running (pinned) assignments for perturbation.
func advanceBench(sc *workload.Scenario, st *kernel.State, s *schedule.Schedule, clock float64) []schedule.Assignment {
	est := sc.Estimator()
	g := sc.Graph
	st.Clock = clock
	st.ClearPinned()
	var running []schedule.Assignment
	for _, j := range g.Jobs() {
		a, ok := s.Get(j.ID)
		if !ok {
			continue
		}
		switch {
		case a.Finish <= clock:
			st.Finish(j.ID, a.Resource, a.Start, a.Finish)
			for _, e := range g.Succs(j.ID) {
				st.SetTransfer(j.ID, e.To, a.Resource, a.Finish)
				if sa, ok := s.Get(e.To); ok {
					st.SetTransfer(j.ID, e.To, sa.Resource, a.Finish+est.Comm(e, a.Resource, sa.Resource))
				}
			}
		case a.Start < clock:
			st.Pin(a)
			running = append(running, a)
		}
	}
	return running
}

// toggleOccupancy serves a mutable foreign claim on one resource, for the
// contention-trigger benches.
type toggleOccupancy struct {
	r    grid.ID
	busy []kernel.Busy
}

func (o *toggleOccupancy) AppendBusy(r grid.ID, buf []kernel.Busy) []kernel.Busy {
	if r == o.r {
		return append(buf, o.busy...)
	}
	return buf
}

// BenchmarkKernelReschedule times one full mid-execution replan — the
// operation the Planner performs per trigger — at stress sizes, exactly as
// the engine drives it: one kernel per run, its dense state maintained and
// rescheduled per event.
//
// The v=N variants are the historical pool-event numbers (resource set
// changed, ranks recomputed, state re-snapshotted) — BENCH_baseline.json
// gates v=5000 at ≥2x fewer allocs/op than the pre-kernel path, so their
// names must stay stable. The trigger=* variants split the cost by trigger
// kind so BENCH_kernel.json trajectories stay attributable: variance and
// contention replan over an unchanged resource set (warm rank cache),
// while arrival and departure pay rank recomputation over a changed one —
// alike today, tracked separately so either can drift alone.
func BenchmarkKernelReschedule(b *testing.B) {
	for _, jobs := range []int{1000, 5000, 20000} {
		jobs := jobs
		b.Run(fmt.Sprintf("v=%d", jobs), func(b *testing.B) {
			sc := kernelScenario(b, jobs)
			est := sc.Estimator()
			k := kernel.New(sc.Graph, est)
			s0, err := k.Static(sc.Pool.Initial(), kernel.Options{})
			if err != nil {
				b.Fatal(err)
			}
			clock := s0.Makespan() / 3
			rs := sc.Pool.AvailableAt(clock)
			st := k.NewState(sc.Pool.Size())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A real pool event changes the resource set, so every
				// production reschedule recomputes the upward ranks;
				// invalidate the cache so each op pays the same work.
				k.InvalidateRanks()
				st.Snapshot(s0, clock, kernel.SnapshotOptions{})
				if _, err := k.Reschedule(rs, st, kernel.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, trigger := range []string{"variance", "arrival", "departure", "contention"} {
		trigger := trigger
		b.Run(fmt.Sprintf("trigger=%s/v=5000", trigger), func(b *testing.B) {
			sc := kernelScenario(b, 5000)
			est := sc.Estimator()
			k := kernel.New(sc.Graph, est)
			occ := &toggleOccupancy{}
			if trigger == "contention" {
				k.SetOccupancy(occ)
			}
			s0, err := k.Static(sc.Pool.Initial(), kernel.Options{})
			if err != nil {
				b.Fatal(err)
			}
			clock := s0.Makespan() / 3
			rsFull := sc.Pool.AvailableAt(clock)
			rsSmall := rsFull[:len(rsFull)-1]
			st := k.NewState(sc.Pool.Size())
			running := advanceBench(sc, st, s0, clock)
			if len(running) == 0 {
				b.Fatal("no running jobs at the bench clock")
			}
			pin := running[0]
			occ.r = rsFull[0].ID
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs := rsFull
				switch trigger {
				case "variance":
					// One running job's revised runtime alternates, so
					// consecutive evaluations always see a changed pin.
					fin := pin.Finish
					if i%2 == 0 {
						fin += 0.1 * (pin.Finish - pin.Start)
					}
					st.Pin(schedule.Assignment{Job: pin.Job, Resource: pin.Resource, Start: pin.Start, Finish: fin})
				case "arrival", "departure":
					// The resource set changed: ranks must be recomputed.
					if i%2 == 0 {
						rs = rsSmall
					}
					k.InvalidateRanks()
				case "contention":
					// A foreign reservation appears and disappears.
					occ.busy = occ.busy[:0]
					if i%2 == 0 {
						occ.busy = append(occ.busy, kernel.Busy{Start: clock, Finish: clock + 50})
					}
				}
				if _, err := k.Reschedule(rs, st, kernel.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelDeltaReschedule times the incremental reschedule path
// absorbing a small event: a foreign reservation (a co-tenant booking, the
// contention trigger) toggling on one resource at a horizon position
// calibrated so the realised dirty cone is the smallest achievable at or
// above the requested size — cone=1 is a perturbation that invalidates a
// single job's slot. Every op must take the delta path (a fallback fails
// the bench) and the realised cone is reported as the "cone" metric. The
// CI benchcmp gate holds v=20000/cone=1 at ≥10x faster than the full
// replan (BenchmarkKernelReschedule/v=20000).
func BenchmarkKernelDeltaReschedule(b *testing.B) {
	for _, jobs := range []int{1000, 5000, 20000} {
		for _, cone := range []int{1, 4, 16} {
			jobs, cone := jobs, cone
			b.Run(fmt.Sprintf("v=%d/cone=%d", jobs, cone), func(b *testing.B) {
				sc := kernelScenario(b, jobs)
				est := sc.Estimator()
				k := kernel.New(sc.Graph, est)
				occ := &toggleOccupancy{}
				k.SetOccupancy(occ)
				s0, err := k.Static(sc.Pool.Initial(), kernel.Options{})
				if err != nil {
					b.Fatal(err)
				}
				clock := s0.Makespan() / 3
				rs := sc.Pool.AvailableAt(clock)
				occ.r = rs[0].ID
				st := k.NewState(sc.Pool.Size())
				advanceBench(sc, st, s0, clock)
				opts := kernel.Options{Incremental: true, MaxConeFrac: 1}
				// First pass records the memo the deltas replay against.
				s1, err := k.Reschedule(rs, st, opts)
				if err != nil {
					b.Fatal(err)
				}
				// Calibrate the reservation position: the cone is the set of
				// jobs whose slots run past the claim, so it shrinks as the
				// claim moves later — binary-search the latest position whose
				// realised cone still reaches the requested size. Each trial
				// toggles the claim on and back off through the delta path,
				// which also warms every scratch buffer before timing.
				width := 0.02 * (s1.Makespan() - clock)
				toggle := func(busy []kernel.Busy) int {
					occ.busy = busy
					if _, err := k.Reschedule(rs, st, opts); err != nil {
						b.Fatal(err)
					}
					ds := k.DeltaStats()
					if !ds.Delta {
						b.Fatalf("delta path not taken: %+v", ds)
					}
					return ds.Cone
				}
				span := s1.Makespan() - clock
				lo, hi := clock, s1.Makespan()
				pos := clock
				// Bracket from the tail inward so every trial keeps a small
				// cone (a mid-horizon trial would re-probe half the DAG).
				for off := span / 1024; ; off *= 2 {
					t := s1.Makespan() - off
					if t <= clock {
						break
					}
					got := toggle([]kernel.Busy{{Start: t, Finish: t + width}})
					toggle(nil)
					if got >= cone {
						pos, lo = t, t
						break
					}
					hi = t
				}
				for i := 0; i < 20 && hi-lo > 1e-6*span; i++ {
					mid := lo + (hi-lo)/2
					got := toggle([]kernel.Busy{{Start: mid, Finish: mid + width}})
					toggle(nil)
					if got >= cone {
						pos, lo = mid, mid
					} else {
						hi = mid
					}
				}
				claim := []kernel.Busy{{Start: pos, Finish: pos + width}}
				coneSum := 0.0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%2 == 0 {
						coneSum += float64(toggle(claim))
					} else {
						coneSum += float64(toggle(nil))
					}
				}
				b.ReportMetric(coneSum/float64(b.N), "cone")
			})
		}
	}
}

// BenchmarkKernelAdaptiveRun times the full adaptive execution on the 5k
// stress case: initial plan plus one reschedule per pool event, through
// the same engine path production callers use.
func BenchmarkKernelAdaptiveRun(b *testing.B) {
	sc := kernelScenario(b, 5000)
	ctx := context.Background()
	est := sc.Estimator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aheft.Run(ctx, sc.Graph, est, sc.Pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelDataAware times one full static placement pass with a
// data model bound — derived file costs, capacity-channel slot search,
// file-reuse lookups — on the data-heavy two-site scenario, beside the
// identical graph's classic pass (no model, raw edge weights) so the
// data path's overhead stays attributable. The classic variant also pins
// the no-files contract: edge-cost derivation is gated on the bound
// model, so its trajectory must track BenchmarkKernelPlacement's.
func BenchmarkKernelDataAware(b *testing.B) {
	for _, searches := range []int{64, 512} {
		sc := workload.DataScenario(workload.DataParams{Searches: searches})
		for _, mode := range []string{"classic", "data"} {
			mode := mode
			b.Run(fmt.Sprintf("v=%d/mode=%s", sc.Graph.Len(), mode), func(b *testing.B) {
				k := kernel.New(sc.Graph, sc.Estimator())
				if mode == "data" {
					m, err := data.NewModel(sc.Files, sc.Pool, sc.Graph, 0)
					if err != nil {
						b.Fatal(err)
					}
					k.SetData(m)
				}
				rs := sc.Pool.Initial()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.Static(rs, kernel.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Daemon throughput benches. ---
//
// BenchmarkServer* is the contract `make bench-server` snapshots into
// BENCH_server.json: end-to-end workflows/sec through the aheftd server
// core — HTTP submission in the wire format, shard routing, the
// kernel-backed engine, and SSE completion — reported as the wf/s
// metric. Run against the committed snapshot with cmd/benchcmp.

// serverBenchBodies pre-encodes distinct paper-scale submissions so the
// benchmark measures the daemon, not the generator.
func serverBenchBodies(b *testing.B, n int) [][]byte {
	b.Helper()
	r := rng.New(0xD0E)
	out := make([][]byte, n)
	for i := range out {
		sc, err := workload.RandomScenario(workload.RandomParams{
			Jobs: 60, CCR: 2, OutDegree: 0.3, Beta: 0.5,
		}, workload.GridParams{
			InitialResources: 8, ChangeInterval: 300, ChangePct: 0.25, MaxEvents: 4,
		}, r)
		if err != nil {
			b.Fatal(err)
		}
		body, err := wire.EncodeSubmission(&wire.Submission{
			Policy: "aheft", Graph: sc.Graph, Comp: sc.Table, Pool: sc.Pool,
		})
		if err != nil {
			b.Fatal(err)
		}
		out[i] = body
	}
	return out
}

// benchServerThroughput drives b.N workflows end to end: each op is one
// POST plus an SSE follow to the terminal event.
func benchServerThroughput(b *testing.B, cfg server.Config) {
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	bodies := serverBenchBodies(b, 8)
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
	var next atomic.Int64
	b.SetParallelism(4) // keep several workflows in flight per core
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := bodies[int(next.Add(1))%len(bodies)]
			resp, err := client.Post(ts.URL+"/v1/workflows", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("submit: HTTP %d", resp.StatusCode)
			}
			var sub wire.Submitted
			err = json.NewDecoder(resp.Body).Decode(&sub)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			ev, err := client.Get(ts.URL + "/v1/workflows/" + sub.ID + "/events")
			if err != nil {
				b.Fatal(err)
			}
			stream, err := io.ReadAll(ev.Body)
			ev.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Contains(stream, []byte(`"kind":"done"`)) {
				b.Fatalf("workflow %s did not complete: %s", sub.ID, stream)
			}
		}
	})
	b.StopTimer()
	if m := srv.MetricsSnapshot(); m.EventsDropped != 0 || m.Failed != 0 {
		b.Fatalf("bench run lost events or failed workflows: %+v", m)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "wf/s")
}

// BenchmarkServerThroughput measures daemon workflows/sec at 1 and 4
// shards (60-job random workflows, accurate estimates).
func BenchmarkServerThroughput(b *testing.B) {
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchServerThroughput(b, server.Config{Shards: shards, QueueDepth: 4096})
		})
	}
}

// BenchmarkServerThroughputWAL is the durability overhead contract: the
// same end-to-end throughput bench as BenchmarkServerThroughput/shards=4
// with the per-shard WAL journaling every submission and terminal record
// under each fsync policy. "interval" (the default) is the number to
// compare against the no-WAL baseline; "always" prices an fsync per
// append.
func BenchmarkServerThroughputWAL(b *testing.B) {
	for _, policy := range []string{"off", "interval", "always"} {
		policy := policy
		b.Run("sync="+policy, func(b *testing.B) {
			benchServerThroughput(b, server.Config{
				Shards: 4, QueueDepth: 4096,
				DataDir: b.TempDir(), WALSync: policy,
			})
		})
	}
}

// BenchmarkServerThroughputTraced is the observability overhead
// contract: the same end-to-end bench as
// BenchmarkServerThroughput/shards=4 with the causal span tracer on —
// intake/queue/plan spans on every workflow, per-stage latency windows
// rolled into /metrics. The acceptance bar is < 5% below the untraced
// shards=4 entry in BENCH_server.json.
func BenchmarkServerThroughputTraced(b *testing.B) {
	benchServerThroughput(b, server.Config{Shards: 4, QueueDepth: 4096, Tracing: true})
}

// BenchmarkWALAppend isolates the durable store's hot path: one
// length-prefixed CRC-framed record appended to a shard WAL per op, with
// a payload sized like a live workflow's journaled state record.
func BenchmarkWALAppend(b *testing.B) {
	payload := json.RawMessage(`{"assignments":[` +
		strings.TrimSuffix(strings.Repeat(`{"job":7,"resource":2,"start":11.5,"finish":25.25},`, 8), ",") + `]}`)
	for _, policy := range []string{"off", "interval", "always"} {
		policy := policy
		b.Run("sync="+policy, func(b *testing.B) {
			pol, err := durable.ParseSyncPolicy(policy)
			if err != nil {
				b.Fatal(err)
			}
			store, _, err := durable.Open(b.TempDir(), pol, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Append(wire.WALState, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures startup replay: each op opens a data
// directory holding 100 crashed live workflows (plans, feedback state,
// tenant histories) and rebuilds the resident daemon state. The wf/s
// metric is recovered workflows per second.
func BenchmarkRecovery(b *testing.B) {
	const workflows = 100
	cfg := server.Config{Shards: 4, QueueDepth: 4096, DataDir: b.TempDir(), WALSync: "off"}
	srv, err := server.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	sc := workload.SampleScenario()
	body, err := wire.EncodeSubmission(&wire.Submission{
		Mode: wire.ModeLive, Policy: "aheft", Tenant: "bench",
		Graph: sc.Graph, Comp: sc.Table, Pool: sc.Pool,
	})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	for i := 0; i < workflows; i++ {
		resp, err := client.Post(ts.URL+"/v1/workflows", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sub wire.Submitted
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		for {
			pr, err := client.Get(ts.URL + "/v1/workflows/" + sub.ID + "/plan")
			if err != nil {
				b.Fatal(err)
			}
			pr.Body.Close()
			if pr.StatusCode == http.StatusOK {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	ts.Close()
	srv.Crash()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := server.Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if m := s.MetricsSnapshot(); m.RecoveredWorkflows != workflows {
			b.Fatalf("recovered %d workflows, want %d", m.RecoveredWorkflows, workflows)
		}
		s.Crash()
	}
	b.ReportMetric(float64(workflows)*float64(b.N)/b.Elapsed().Seconds(), "wf/s")
}

// --- Feedback-loop ingest benches (part of `make bench-server`). ---

// feedbackBench hosts one daemon and one resident live workflow for the
// ingest benches.
type feedbackBench struct {
	ts   *httptest.Server
	sc   *workload.Scenario
	id   string
	plan wire.Plan
}

func newFeedbackBench(b *testing.B, varianceThreshold float64) *feedbackBench {
	b.Helper()
	srv := server.New(server.Config{Shards: 1, QueueDepth: 4096})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		// The bench deliberately leaves a live workflow resident; a short
		// deadline force-cancels it instead of waiting out a clean drain.
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	r := rng.New(0xFEEDBE)
	sc, err := workload.BlastScenario(workload.AppParams{Parallelism: 24, CCR: 1, Beta: 0.5},
		workload.GridParams{InitialResources: 8, ChangeInterval: 1e9, ChangePct: 0.25, MaxEvents: 1}, r)
	if err != nil {
		b.Fatal(err)
	}
	f := &feedbackBench{ts: ts, sc: sc}
	f.id, f.plan = f.submitLive(b, varianceThreshold)
	return f
}

func (f *feedbackBench) submitLive(b *testing.B, varianceThreshold float64) (string, wire.Plan) {
	b.Helper()
	body, err := wire.EncodeSubmission(&wire.Submission{
		Mode: wire.ModeLive, Policy: "aheft", Tenant: "bench",
		Options: wire.Options{VarianceThreshold: varianceThreshold},
		Graph:   f.sc.Graph, Comp: f.sc.Table, Pool: f.sc.Pool,
	})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := f.ts.Client().Post(f.ts.URL+"/v1/workflows", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var sub wire.Submitted
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	for {
		pr, err := f.ts.Client().Get(f.ts.URL + "/v1/workflows/" + sub.ID + "/plan")
		if err != nil {
			b.Fatal(err)
		}
		if pr.StatusCode == http.StatusOK {
			var plan wire.Plan
			err = json.NewDecoder(pr.Body).Decode(&plan)
			pr.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			return sub.ID, plan
		}
		pr.Body.Close()
		time.Sleep(time.Millisecond)
	}
}

func (f *feedbackBench) post(b *testing.B, id string, events ...wire.ReportEvent) wire.ReportAck {
	b.Helper()
	body, err := wire.EncodeReport(&wire.Report{Events: events})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := f.ts.Client().Post(f.ts.URL+"/v1/workflows/"+id+"/report", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var ack wire.ReportAck
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		b.Fatalf("report: HTTP %d: %s", resp.StatusCode, msg)
	}
	err = json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	return ack
}

// BenchmarkFeedbackIngest measures the daemon's runtime-feedback path.
// "record" is pure Performance-Monitor ingest: each op is one report
// batch (job-started + measured job-finished) folded into the per-tenant
// history with the variance gate never firing; workflows are replaced as
// they complete. "reschedule" forces a full variance-triggered
// rescheduling evaluation (history-based re-estimation + kernel replan +
// projection) on every report.
func BenchmarkFeedbackIngest(b *testing.B) {
	b.Run("record", func(b *testing.B) {
		f := newFeedbackBench(b, 1e9) // variance never triggers
		id, plan := f.id, f.plan
		next, clock := 0, 0.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if next == len(plan.Assignments) {
				b.StopTimer()
				id, plan = f.submitLive(b, 1e9)
				next, clock = 0, 0
				b.StartTimer()
			}
			a := plan.Assignments[next]
			next++
			dur := a.Finish - a.Start
			ack := f.post(b, id,
				wire.ReportEvent{Kind: wire.ReportJobStarted, Time: clock, Job: a.Job, Resource: a.Resource},
				wire.ReportEvent{Kind: wire.ReportJobFinished, Time: clock + dur, Job: a.Job, Duration: dur},
			)
			if ack.Applied != 2 {
				b.Fatalf("ack: %+v", ack)
			}
			clock += dur
		}
		b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("reschedule", func(b *testing.B) {
		f := newFeedbackBench(b, 1e9)
		// Hold one job running forever; every variance report on it forces
		// an evaluation over the remaining jobs.
		a := f.plan.Assignments[0]
		f.post(b, f.id, wire.ReportEvent{Kind: wire.ReportJobStarted, Time: 0, Job: a.Job, Resource: a.Resource})
		clock := 1.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate the revised runtime so consecutive evaluations see
			// different pins.
			rev := (a.Finish - a.Start) * (1.5 + 0.5*float64(i%2))
			ack := f.post(b, f.id, wire.ReportEvent{
				Kind: wire.ReportVariance, Time: clock, Job: a.Job, Duration: rev,
			})
			if ack.Decisions != 1 {
				b.Fatalf("ack: %+v", ack)
			}
			clock++
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "evals/s")
	})
}

// --- Smaller end-to-end benches retained from the paper-scale suite. ---

// BenchmarkAHEFTReschedule times one mid-execution reschedule at the
// paper's workflow sizes.
func BenchmarkAHEFTReschedule(b *testing.B) {
	for _, jobs := range []int{50, 200, 1000} {
		jobs := jobs
		b.Run(fmt.Sprintf("v=%d", jobs), func(b *testing.B) {
			sc := benchScenario(b, jobs)
			est := sc.Estimator()
			s0, err := heft.Schedule(sc.Graph, est, sc.Pool.Initial(), heft.Options{})
			if err != nil {
				b.Fatal(err)
			}
			clock := s0.Makespan() / 3
			rs := sc.Pool.AvailableAt(clock)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := core.Snapshot(sc.Graph, est, s0, clock, core.SnapshotOptions{})
				if _, err := core.Reschedule(sc.Graph, est, rs, st, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinMinRun times the dynamic baseline end to end through the v2
// facade.
func BenchmarkMinMinRun(b *testing.B) {
	ctx := context.Background()
	for _, jobs := range []int{50, 200} {
		jobs := jobs
		b.Run(fmt.Sprintf("v=%d", jobs), func(b *testing.B) {
			sc := benchScenario(b, jobs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool, aheft.WithPolicy("minmin")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdaptiveRun times the full adaptive execution (initial plan +
// every event reschedule) — the experiment harness's unit of work.
func BenchmarkAdaptiveRun(b *testing.B) {
	ctx := context.Background()
	for _, jobs := range []int{50, 200} {
		jobs := jobs
		b.Run(fmt.Sprintf("v=%d", jobs), func(b *testing.B) {
			sc := benchScenario(b, jobs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSharedGridContention measures one full shared-grid
// co-scheduling round through the daemon (part of `make bench-server`):
// a 2-tenant BLAST/WIEN2K mix planned with mutual reservation
// visibility, enacted together on one simulated grid (a resource runs
// one job at a time across tenants, 20% runtime noise, 30% arrival
// churn) with every run-time event reported and cross-workflow
// contention reschedules adopted mid-flight — plus the
// isolated-planning baseline enacted on the identical job stream. One
// op is one complete round; the grid is registered once and reused, and
// every round must drain its reservations to zero.
func BenchmarkSharedGridContention(b *testing.B) {
	srv := server.New(server.Config{Shards: 2, QueueDepth: 4096})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	gp := workload.GridParams{InitialResources: 4, ChangeInterval: 400, ChangePct: 0.25, MaxEvents: 2}
	r := rng.New(0x5a12ed)
	bl, err := workload.BlastScenario(workload.AppParams{Parallelism: 12, CCR: 1, Beta: 0.5}, gp, r)
	if err != nil {
		b.Fatal(err)
	}
	wn, err := workload.Wien2kScenario(workload.AppParams{Parallelism: 12, CCR: 1, Beta: 0.5}, gp, r)
	if err != nil {
		b.Fatal(err)
	}
	tenants := []drive.Tenant{
		{Name: "blast", Scenario: bl, Policy: "aheft", Options: wire.Options{VarianceThreshold: 0.2}},
		{Name: "wien2k", Scenario: wn, Policy: "aheft", Options: wire.Options{VarianceThreshold: 0.2}},
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := drive.RunShared(ctx, drive.SharedConfig{
			BaseURL: ts.URL, Client: ts.Client(), Grid: "bench",
			Pool: bl.Pool, Noise: 0.2, Churn: 0.3, Seed: uint64(i)*97 + 3,
		}, tenants)
		if err != nil {
			b.Fatal(err)
		}
		if out.FinalReservations != 0 {
			b.Fatalf("round %d leaked %d reservations", i, out.FinalReservations)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkWorkloadGeneration times scenario construction (DAG + costs +
// pool), which dominates sweep startup.
func BenchmarkWorkloadGeneration(b *testing.B) {
	r := rng.New(0xFACE)
	b.Run("random-100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := workload.RandomScenario(workload.RandomParams{
				Jobs: 100, CCR: 1, OutDegree: 0.3, Beta: 0.5,
			}, workload.GridParams{InitialResources: 20, ChangeInterval: 400, ChangePct: 0.2}, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blast-500", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := workload.BlastScenario(workload.AppParams{Parallelism: 249, CCR: 1, Beta: 0.5},
				workload.GridParams{InitialResources: 40, ChangeInterval: 400, ChangePct: 0.2}, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("layered-5000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := workload.LayeredScenario(workload.LayeredParams{
				Jobs: 5000, Width: 100, FanIn: 3, CCR: 1, Beta: 0.5,
			}, workload.GridParams{InitialResources: 16, ChangeInterval: 500, ChangePct: 0.25, MaxEvents: 4}, r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
