// Package aheft is a Go implementation of AHEFT — the adaptive
// rescheduling strategy for grid workflow applications of Yu & Shi (IPDPS
// 2007) — together with everything needed to study it: the classic static
// HEFT scheduler it extends, a dynamic just-in-time Min-Min baseline, a
// deterministic discrete-event grid executor with a collaborating
// event-driven planner, workload generators for parametric random DAGs and
// the BLAST/WIEN2K application shapes, and an experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	sc := aheft.SampleScenario() // the paper's Fig. 4 worked example
//	res, err := aheft.Run(sc.Graph, sc.Estimator(), sc.Pool,
//	    aheft.Adaptive, aheft.RunOptions{TieWindow: 0.05})
//	// res.Makespan == 76; the static plan (aheft.Static) gives 80.
//
// The facade re-exports the most commonly used types from the internal
// packages; import the internal packages directly for the full API
// surface (internal/dag for graph construction, internal/workload for
// generators, internal/experiment for the evaluation harness, …).
package aheft

import (
	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/minmin"
	"aheft/internal/planner"
	"aheft/internal/schedule"
	"aheft/internal/workload"
)

// Core model types.
type (
	// Graph is a workflow DAG (jobs + weighted data-dependence edges).
	Graph = dag.Graph
	// JobID identifies a job within one Graph.
	JobID = dag.JobID
	// Resource is one computation unit of the grid.
	Resource = grid.Resource
	// Pool is the time-varying resource set.
	Pool = grid.Pool
	// Estimator supplies the performance estimation matrix P.
	Estimator = cost.Estimator
	// CostTable is the ground-truth jobs × resources cost matrix.
	CostTable = cost.Table
	// Schedule maps jobs to (resource, start, finish) assignments.
	Schedule = schedule.Schedule
	// Assignment is one job's placement.
	Assignment = schedule.Assignment
	// Scenario bundles a workflow, its cost table and its dynamic pool.
	Scenario = workload.Scenario
	// RunOptions tunes the planner (see planner.RunOptions).
	RunOptions = planner.RunOptions
	// Result is a completed execution.
	Result = planner.Result
	// Decision records one rescheduling evaluation.
	Decision = planner.Decision
	// Strategy selects static HEFT or adaptive AHEFT planning.
	Strategy = planner.Strategy
)

// Strategies.
const (
	// Static is traditional one-shot HEFT planning.
	Static = planner.StrategyStatic
	// Adaptive is the paper's AHEFT adaptive rescheduling.
	Adaptive = planner.StrategyAdaptive
)

// NewGraph returns an empty workflow graph.
func NewGraph(name string) *Graph { return dag.New(name) }

// StaticPool returns n resources all available from time 0.
func StaticPool(n int) *Pool { return grid.StaticPool(n) }

// Exact adapts a ground-truth cost table into the Estimator the planner
// consumes (the paper's accurate-estimation assumption).
func Exact(t *CostTable) Estimator { return cost.Exact(t) }

// Run executes a workflow on the dynamic pool under the chosen strategy
// with accurate estimates and returns the completed execution. This is the
// paper's experiment path; for the full event-driven Planner/Executor
// architecture use planner.NewService.
func Run(g *Graph, est Estimator, pool *Pool, strat Strategy, opts RunOptions) (*Result, error) {
	return planner.Run(g, est, pool, strat, opts)
}

// HEFT computes a one-shot static HEFT schedule over a fixed resource set.
func HEFT(g *Graph, est Estimator, rs []Resource) (*Schedule, error) {
	return heft.Schedule(g, est, rs, heft.Options{})
}

// MinMin runs the dynamic just-in-time Min-Min baseline and returns its
// makespan and realised schedule.
func MinMin(g *Graph, est Estimator, pool *Pool) (*minmin.Result, error) {
	return minmin.Run(g, est, pool, minmin.MinMin)
}

// SampleScenario returns the paper's Fig. 4 worked example: the ten-job
// sample DAG, its cost matrix, and a pool in which r4 joins at t = 15.
func SampleScenario() *Scenario { return workload.SampleScenario() }
