// Package aheft is a Go implementation of AHEFT — the adaptive
// rescheduling strategy for grid workflow applications of Yu & Shi (IPDPS
// 2007) — together with everything needed to study it: the classic static
// HEFT scheduler it extends, a dynamic just-in-time Min-Min baseline, a
// deterministic discrete-event grid executor with a collaborating
// event-driven planner, workload generators for parametric random DAGs and
// the BLAST/WIEN2K application shapes, and an experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// # The v2 API
//
// Scheduling strategies are pluggable policies behind one engine: every
// registered policy ("heft", "aheft", "minmin", "maxmin", "sufferage" —
// see Policies) runs through the same adaptive-rescheduling loop, selected
// by name with functional options. Run is context-aware and a Session
// executes many workflows concurrently over one pool with an
// event-subscription channel.
//
//	sc := aheft.SampleScenario() // the paper's Fig. 4 worked example
//	res, err := aheft.Run(ctx, sc.Graph, sc.Estimator(), sc.Pool,
//	    aheft.WithPolicy("aheft"), aheft.WithTieWindow(0.05))
//	// res.Makespan == 76; WithPolicy("heft") gives the static 80.
//
// For many workflows at once:
//
//	s := aheft.NewSession(ctx, pool, aheft.WithPolicy("aheft"))
//	events := s.Events()            // subscribe before submitting
//	s.Submit("wf-1", g1, est1)
//	s.Submit("wf-2", g2, est2)
//	results, err := s.Wait()        // errgroup-style: first error cancels
//
// The facade re-exports the most commonly used types from the internal
// packages; import the internal packages directly for the full API
// surface (internal/dag for graph construction, internal/workload for
// generators, internal/policy to register custom policies,
// internal/experiment for the evaluation harness, …).
package aheft

import (
	"context"
	"fmt"

	"aheft/internal/cost"
	"aheft/internal/dag"
	"aheft/internal/data"
	"aheft/internal/executor"
	"aheft/internal/grid"
	"aheft/internal/heft"
	"aheft/internal/history"
	"aheft/internal/planner"
	"aheft/internal/policy"
	"aheft/internal/schedule"
	"aheft/internal/trace"
	"aheft/internal/workload"
)

// Core model types.
type (
	// Graph is a workflow DAG (jobs + weighted data-dependence edges).
	Graph = dag.Graph
	// JobID identifies a job within one Graph.
	JobID = dag.JobID
	// Resource is one computation unit of the grid.
	Resource = grid.Resource
	// Pool is the time-varying resource set.
	Pool = grid.Pool
	// Estimator supplies the performance estimation matrix P.
	Estimator = cost.Estimator
	// CostTable is the ground-truth jobs × resources cost matrix.
	CostTable = cost.Table
	// Schedule maps jobs to (resource, start, finish) assignments.
	Schedule = schedule.Schedule
	// Assignment is one job's placement.
	Assignment = schedule.Assignment
	// Scenario bundles a workflow, its cost table and its dynamic pool.
	Scenario = workload.Scenario
	// Result is a completed execution.
	Result = planner.Result
	// Decision records one rescheduling evaluation.
	Decision = planner.Decision
	// Policy is a pluggable scheduling strategy (see internal/policy).
	Policy = policy.Policy
	// History is the performance-history repository of the Fig. 1
	// feedback loop.
	History = history.Repository
	// Trace collects structured execution event logs.
	Trace = trace.Collector
	// Runtime supplies actual job durations to the event-driven executor
	// when they deviate from the estimates.
	Runtime = executor.Runtime
	// FileSet is a workflow's data-file catalog (see WithFileReuse).
	FileSet = data.Set
	// File is one named data product of a FileSet.
	File = data.File
)

// NewGraph returns an empty workflow graph.
func NewGraph(name string) *Graph { return dag.New(name) }

// StaticPool returns n resources all available from time 0.
func StaticPool(n int) *Pool { return grid.StaticPool(n) }

// Exact adapts a ground-truth cost table into the Estimator the planner
// consumes (the paper's accurate-estimation assumption).
func Exact(t *CostTable) Estimator { return cost.Exact(t) }

// SampleScenario returns the paper's Fig. 4 worked example: the ten-job
// sample DAG, its cost matrix, and a pool in which r4 joins at t = 15.
func SampleScenario() *Scenario { return workload.SampleScenario() }

// DataScenario returns the data-heavy two-site scenario (pre-staged
// database, fan-out searches, link-constrained grid) that exercises the
// data-aware scheduling path; its Files catalog plugs into WithFileReuse.
func DataScenario() *Scenario { return workload.DataScenario(workload.DataParams{}) }

// NewHistory returns an empty performance-history repository (default
// EWMA smoothing).
func NewHistory() *History { return history.New(0) }

// NewTrace returns a collector recording the execution of workflows over
// g (g may be nil; it only resolves job names).
func NewTrace(g *Graph) *Trace { return trace.NewCollector(g, nil) }

// Policies lists the registered scheduling-policy names.
func Policies() []string { return policy.Names() }

// config is the resolved option set of one Run or Session.
type config struct {
	policyName string
	popts      policy.Options

	// Data-aware scheduling inputs, resolved against the concrete pool
	// inside run (WithLinks/WithFileReuse).
	links map[string]float64
	files *FileSet

	// Event-driven extras; any of these switches Run onto the
	// discrete-event executor path.
	runtime     Runtime
	hist        *History
	trace       *Trace
	varianceThr float64
	eventDriven bool
}

func newConfig(opts []Option) config {
	cfg := config{policyName: "aheft"}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

func (c config) wantsEngine() bool {
	return c.eventDriven || c.runtime != nil || c.hist != nil || c.trace != nil || c.varianceThr > 0
}

// Option configures Run, NewSession, and Session.Submit via functional
// options.
type Option func(*config)

// WithPolicy selects the scheduling policy by registry name ("heft",
// "aheft", "minmin", "maxmin", "sufferage", or any custom registration).
// The default is "aheft".
func WithPolicy(name string) Option { return func(c *config) { c.policyName = name } }

// WithTieWindow enables near-tie rank-order exploration in the
// rescheduler; ≈0.05 recovers the paper's Fig. 5(b) worked example, zero
// (the default) is paper-faithful greedy.
func WithTieWindow(w float64) Option { return func(c *config) { c.popts.TieWindow = w } }

// WithNoInsertion disables HEFT's insertion-based slot policy (ablation).
func WithNoInsertion() Option { return func(c *config) { c.popts.NoInsertion = true } }

// WithRestartRunning reschedules mid-execution jobs, discarding their
// partial work (ablation); the default pins running jobs in place. The
// ablation exists only on the analytic engine — the event-driven
// executor cannot revoke a started job — so combining it with an
// event-driven option is an error.
func WithRestartRunning() Option { return func(c *config) { c.popts.RestartRunning = true } }

// WithEps sets the minimum makespan improvement required to adopt a new
// schedule (zero means the 1e-9 float tolerance).
func WithEps(eps float64) Option { return func(c *config) { c.popts.Eps = eps } }

// WithHistory feeds every measured job runtime into the repository — the
// Fig. 1 feedback loop. Implies the event-driven executor path.
func WithHistory(h *History) Option { return func(c *config) { c.hist = h } }

// WithTrace records run-time events and rescheduling decisions into the
// collector. Implies the event-driven executor path.
func WithTrace(t *Trace) Option { return func(c *config) { c.trace = t } }

// WithRuntime supplies actual job durations that may deviate from the
// estimates (inaccurate-prediction studies). Implies the event-driven
// executor path.
func WithRuntime(rt Runtime) Option { return func(c *config) { c.runtime = rt } }

// WithVarianceThreshold makes the planner also evaluate a reschedule when
// a measured runtime deviates from the history EWMA by more than this
// relative amount — the paper's "significant variance" event. Implies the
// event-driven executor path and requires WithHistory (deviations are
// judged against the repository); combine with WithRuntime for runtimes
// that actually deviate.
func WithVarianceThreshold(v float64) Option { return func(c *config) { c.varianceThr = v } }

// WithLinks declares (or overrides) named shared-link bandwidths on the
// run's pool: resources referencing a link by name (Resource.Link) share
// its capacity, and data-aware transfers crossing it serialize against
// each other. Typically combined with WithFileReuse; without a file
// catalog the links are carried but no edge derives a cost from them.
func WithLinks(links map[string]float64) Option {
	return func(c *config) { c.links = links }
}

// WithFileReuse turns on data-aware scheduling: edges that name a file of
// the catalog cost file size ÷ effective path bandwidth instead of their
// raw numeric weight, transfers occupy the pool's declared uplink/
// downlink/link capacities and serialize in the slot search, and an input
// already materialized on a resource — produced there, pre-staged on one
// of the file's Hosts, or staged by an earlier transfer — costs nothing.
// A nil catalog (or not using this option) keeps every schedule
// bit-identical to the classic point-to-point model.
func WithFileReuse(fs *FileSet) Option {
	return func(c *config) { c.files = fs }
}

// WithEventDriven forces the discrete-event Planner/Executor path even
// when no event-driven extra is configured (the analytic engine is the
// default because it is faster and provably equivalent under accurate
// estimates).
func WithEventDriven() Option { return func(c *config) { c.eventDriven = true } }

// Run executes one workflow on the dynamic pool under the configured
// policy (default "aheft") with accurate estimates and returns the
// completed execution. It honours ctx: cancellation aborts the run with
// the context's error.
//
// By default the fast analytic engine replays the paper's experiment
// setting; options that need the run-time architecture (WithRuntime,
// WithHistory, WithTrace, WithVarianceThreshold, WithEventDriven) switch
// to the event-driven Planner/Executor collaboration, which integration
// tests hold to the same results under accurate estimates for the
// plan-ahead policies. Just-in-time policies ("minmin", "maxmin",
// "sufferage") and WithRestartRunning are analytic-only and return an
// error when combined with those options.
func Run(ctx context.Context, g *Graph, est Estimator, pool *Pool, opts ...Option) (*Result, error) {
	return run(ctx, g, est, pool, newConfig(opts), nil)
}

func run(ctx context.Context, g *Graph, est Estimator, pool *Pool, cfg config, observe func(Decision)) (*Result, error) {
	pol, err := policy.Get(cfg.policyName)
	if err != nil {
		return nil, fmt.Errorf("aheft: %w", err)
	}
	if cfg.links != nil {
		merged, err := pool.WithLinks(cfg.links)
		if err != nil {
			return nil, fmt.Errorf("aheft: %w", err)
		}
		pool = merged
	}
	if cfg.files != nil {
		m, err := data.NewModel(cfg.files, pool, g, 0)
		if err != nil {
			return nil, fmt.Errorf("aheft: %w", err)
		}
		cfg.popts.Data = m
	}
	if !cfg.wantsEngine() {
		return planner.RunPolicyObserved(ctx, g, est, pool, pol, cfg.popts, observe)
	}
	// The event-driven executor enacts schedules with ship-on-finish
	// transfers; re-enacting a just-in-time dispatch simulation that way
	// would start transfers earlier than its model allows and silently
	// improve the baseline, so refuse rather than mis-measure.
	if policy.IsJustInTime(pol) {
		return nil, fmt.Errorf("aheft: policy %q is a just-in-time dispatch simulation and does not support the event-driven options (WithRuntime/WithHistory/WithTrace/WithVarianceThreshold/WithEventDriven)", pol.Name())
	}
	// Restart-running is an analytic-only ablation: the executor cannot
	// revoke a started job, so honouring it here would quietly degrade to
	// pin-running semantics.
	if cfg.popts.RestartRunning {
		return nil, fmt.Errorf("aheft: WithRestartRunning is an analytic-engine ablation and cannot be combined with the event-driven options")
	}
	// Variance triggers are judged against the performance history; without
	// one the threshold would be silently inert.
	if cfg.varianceThr > 0 && cfg.hist == nil {
		return nil, fmt.Errorf("aheft: WithVarianceThreshold needs WithHistory to judge deviations against")
	}
	svc, err := planner.NewService(g, est, pool, planner.ServiceOptions{
		RunOptions:        cfg.popts,
		Policy:            pol,
		Runtime:           cfg.runtime,
		History:           cfg.hist,
		VarianceThreshold: cfg.varianceThr,
		Trace:             cfg.trace,
	})
	if err != nil {
		return nil, err
	}
	res, err := svc.ExecuteContext(ctx)
	if err != nil {
		return nil, err
	}
	if observe != nil {
		for _, d := range res.Decisions {
			observe(d)
		}
	}
	return res, nil
}

// HEFT computes a one-shot static HEFT schedule over a fixed resource set.
func HEFT(g *Graph, est Estimator, rs []Resource) (*Schedule, error) {
	return heft.Schedule(g, est, rs, heft.Options{})
}

// MinMin runs the dynamic just-in-time Min-Min baseline and returns the
// completed execution — shorthand for Run with WithPolicy("minmin").
func MinMin(ctx context.Context, g *Graph, est Estimator, pool *Pool) (*Result, error) {
	return Run(ctx, g, est, pool, WithPolicy("minmin"))
}
